package conv

import "ucudnn/internal/tensor"

// runImplicitGemm performs the convolution as an implicitly-lowered matrix
// product: the im2col gather happens on the fly inside the inner loops, so
// no workspace is needed. The loop nest differs from the direct kernel
// (filter taps outermost, output pixels innermost) which is how implicit
// GEMM kernels stream through memory.
func runImplicitGemm(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	switch op {
	case Forward:
		phaseFor(phImplicitMain, out.N*out.C, func(idx int) {
			n := idx / out.C
			k := idx % out.C
			plane := y.Data[y.Index(n, k, 0, 0) : y.Index(n, k, 0, 0)+out.H*out.W]
			if beta == 0 {
				for i := range plane {
					plane[i] = 0
				}
			} else if beta != 1 {
				for i := range plane {
					plane[i] *= beta
				}
			}
			for c := 0; c < f.C; c++ {
				for r := 0; r < f.R; r++ {
					for s := 0; s < f.S; s++ {
						wv := alpha * w.At(k, c, r, s)
						if wv == 0 {
							continue
						}
						for oh := 0; oh < out.H; oh++ {
							ih := oh*p.StrideH - p.PadH + r*p.DilationH
							if ih < 0 || ih >= in.H {
								continue
							}
							dst := plane[oh*out.W : (oh+1)*out.W]
							for ow := 0; ow < out.W; ow++ {
								iw := ow*p.StrideW - p.PadW + s*p.DilationW
								if iw < 0 || iw >= in.W {
									continue
								}
								dst[ow] += wv * x.At(n, c, ih, iw)
							}
						}
					}
				}
			}
		})
	case BackwardData:
		phaseFor(phImplicitMain, in.N*in.C, func(idx int) {
			n := idx / in.C
			c := idx % in.C
			plane := x.Data[x.Index(n, c, 0, 0) : x.Index(n, c, 0, 0)+in.H*in.W]
			if beta == 0 {
				for i := range plane {
					plane[i] = 0
				}
			} else if beta != 1 {
				for i := range plane {
					plane[i] *= beta
				}
			}
			for k := 0; k < f.K; k++ {
				for r := 0; r < f.R; r++ {
					for s := 0; s < f.S; s++ {
						wv := alpha * w.At(k, c, r, s)
						if wv == 0 {
							continue
						}
						for oh := 0; oh < out.H; oh++ {
							ih := oh*p.StrideH - p.PadH + r*p.DilationH
							if ih < 0 || ih >= in.H {
								continue
							}
							for ow := 0; ow < out.W; ow++ {
								iw := ow*p.StrideW - p.PadW + s*p.DilationW
								if iw < 0 || iw >= in.W {
									continue
								}
								plane[ih*in.W+iw] += wv * y.At(n, k, oh, ow)
							}
						}
					}
				}
			}
		})
	case BackwardFilter:
		// Per output channel: stream dY pixels, scattering into the filter
		// gradient row. Batch order is preserved per element (n outermost),
		// so beta=1 micro-batch accumulation keeps the paper's semantics.
		crs := f.C * f.R * f.S
		phaseFor(phImplicitMain, f.K, func(k int) {
			row := w.Data[k*crs : (k+1)*crs]
			if beta == 0 {
				for i := range row {
					row[i] = 0
				}
			} else if beta != 1 {
				for i := range row {
					row[i] *= beta
				}
			}
			for n := 0; n < in.N; n++ {
				for oh := 0; oh < out.H; oh++ {
					for ow := 0; ow < out.W; ow++ {
						g := alpha * y.At(n, k, oh, ow)
						if g == 0 {
							continue
						}
						hBase := oh*p.StrideH - p.PadH
						wBase := ow*p.StrideW - p.PadW
						for c := 0; c < f.C; c++ {
							for r := 0; r < f.R; r++ {
								ih := hBase + r*p.DilationH
								if ih < 0 || ih >= in.H {
									continue
								}
								for s := 0; s < f.S; s++ {
									iw := wBase + s*p.DilationW
									if iw < 0 || iw >= in.W {
										continue
									}
									row[(c*f.R+r)*f.S+s] += g * x.At(n, c, ih, iw)
								}
							}
						}
					}
				}
			}
		})
	}
}

// precompWorkspace returns the bytes for the precomputed gather-index
// table: one float32-encoded sample-local offset (or -1 for a padded
// position) per im2col matrix entry.
func precompWorkspace(cs tensor.ConvShape) int64 {
	out := cs.OutShape()
	return int64(cs.Filt.C) * int64(cs.Filt.R) * int64(cs.Filt.S) *
		int64(out.H) * int64(out.W) * 4
}

// runImplicitPrecomp is IMPLICIT_PRECOMP_GEMM: the gather offsets of the
// implicit lowering are precomputed once into workspace (they are shared
// by every sample), then each sample streams through the table. Offsets
// are stored as float32 values, which is exact because Supported bounds
// per-sample tensors to 2^24 elements.
func runImplicitPrecomp(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) {
	if op != Forward {
		panic("conv: IMPLICIT_PRECOMP_GEMM supports Forward only")
	}
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	pixels := out.H * out.W
	crs := f.C * f.R * f.S
	table := ws[:crs*pixels]
	// Each table row (one (c, r, s) filter tap) is independent, so the
	// build parallelizes over taps.
	phaseFor(phImplicitPrecomp, crs, func(j int) {
		c := j / (f.R * f.S)
		r := (j / f.S) % f.R
		s := j % f.S
		trow := table[j*pixels : (j+1)*pixels]
		ti := 0
		for oh := 0; oh < out.H; oh++ {
			ih := oh*p.StrideH - p.PadH + r*p.DilationH
			for ow := 0; ow < out.W; ow++ {
				iw := ow*p.StrideW - p.PadW + s*p.DilationW
				if ih < 0 || ih >= in.H || iw < 0 || iw >= in.W {
					trow[ti] = -1
				} else {
					trow[ti] = float32((c*in.H+ih)*in.W + iw)
				}
				ti++
			}
		}
	})
	inPlane := in.C * in.H * in.W
	phaseFor(phImplicitMain, out.N*out.C, func(idx int) {
		n := idx / out.C
		k := idx % out.C
		xn := x.Data[n*inPlane : (n+1)*inPlane]
		plane := y.Data[y.Index(n, k, 0, 0) : y.Index(n, k, 0, 0)+pixels]
		if beta == 0 {
			for i := range plane {
				plane[i] = 0
			}
		} else if beta != 1 {
			for i := range plane {
				plane[i] *= beta
			}
		}
		wrow := w.Data[k*crs : (k+1)*crs]
		for j := 0; j < crs; j++ {
			wv := alpha * wrow[j]
			if wv == 0 {
				continue
			}
			trow := table[j*pixels : (j+1)*pixels]
			for i, idxF := range trow {
				if idxF >= 0 {
					plane[i] += wv * xn[int(idxF)]
				}
			}
		}
	})
}
