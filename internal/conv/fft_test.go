package conv

import (
	"math"
	"testing"

	"ucudnn/internal/tensor"
)

// Dedicated worker-count determinism test for the FFT algorithms on a
// shape large enough that plane and tile transforms genuinely spread
// across workers (the generic TestWorkerCountBitwiseInvariance matrix
// uses small shapes where most stages collapse to one worker). Also
// crosses workspace grants: the MinWorkspace single-scratch floor must
// be bit-identical to the full per-worker layout at every P.
func TestFFTAlgoBitwiseAcrossWorkersAndWorkspace(t *testing.T) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 2, C: 5, H: 20, W: 36},
		Filt:   tensor.Filter{K: 6, C: 5, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	for _, algo := range []Algo{AlgoFFT, AlgoFFTTiling} {
		for _, op := range Ops {
			if !Supported(op, algo, cs) {
				t.Fatalf("%v/%v unsupported on the test shape", op, algo)
			}
			full, _ := Workspace(op, algo, cs)
			floor, _ := MinWorkspace(op, algo, cs)
			var ref []float32
			for _, p := range []int{1, 2, 3, 4} {
				for _, wsBytes := range []int64{full, floor} {
					withWorkers(p, func() {
						x, w, y := randomProblem(cs, 77)
						ws := make([]float32, (wsBytes+3)/4)
						if err := Run(op, algo, cs, x, w, y, 0.5, 0.5, ws); err != nil {
							t.Fatalf("P=%d %v/%v: %v", p, op, algo, err)
						}
						got := resultOf(op, x, w, y)
						if ref == nil {
							ref = append([]float32(nil), got...)
							return
						}
						for i := range got {
							if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
								t.Fatalf("P=%d ws=%dB %v/%v: elem %d = %x, reference %x",
									p, wsBytes, op, algo, i,
									math.Float32bits(got[i]), math.Float32bits(ref[i]))
							}
						}
					})
				}
			}
		}
	}
}
