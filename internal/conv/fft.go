package conv

import (
	"ucudnn/internal/fftpkg"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
)

// fftTile is the fixed spatial FFT size of the FFT_TILING algorithm,
// matching cuDNN's 32x32 tiles.
const fftTile = 32

// A spectralPlan describes the 2-D FFT geometry shared by all planes of
// one convolution call: a P x Q transform (powers of two) of which only
// the Hermitian half-spectrum (P rows x Q/2+1 columns) is stored, exactly
// as cuFFT's R2C transforms do. Each stored plane is interleaved
// (re, im) float32 pairs.
type spectralPlan struct {
	p, q, hw int // hw = q/2 + 1
}

func newSpectralPlan(rows, cols int) spectralPlan {
	p := fftpkg.NextPow2(rows)
	q := fftpkg.NextPow2(cols)
	return spectralPlan{p: p, q: q, hw: q/2 + 1}
}

// planeFloats returns the number of float32 elements per stored plane.
func (pl spectralPlan) planeFloats() int { return 2 * pl.p * pl.hw }

// tableFloats returns the float32 elements of the plan's precomputed
// twiddle tables, carved from the workspace once per Run.
func (pl spectralPlan) tableFloats() int { return fftpkg.PlanFloats(pl.p, pl.q) }

// scratchFloats returns the float32 elements of one worker's transform
// scratch (a real p x q plane plus a complex column buffer).
func (pl spectralPlan) scratchFloats() int { return fftpkg.ScratchFloats(pl.p, pl.q) }

// embedPlane zero-fills the real p x q scratch plane re (row stride q)
// and writes the source element data[base + ih*sh + iw*sw] into
// re[r*q+c] for r < rows, c < cols, where (ih, iw) = (r-offH, c-offW);
// source coordinates outside [0, limH) x [0, limW) are the zero padding
// and are skipped. Negative strides express the rotated-filter reads of
// BackwardData.
//
//ucudnn:hotpath
func embedPlane(re []float32, q, rows, cols int, data []float32, base, sh, sw, offH, offW, limH, limW int) {
	// Only the first rows*q elements are filled; FwdReal is told the rest
	// of the plane is zero and never reads it.
	for i := range re[:rows*q] {
		re[i] = 0
	}
	for r := 0; r < rows; r++ {
		ih := r - offH
		if ih < 0 || ih >= limH {
			continue
		}
		dst := re[r*q : r*q+cols]
		for c := range dst {
			iw := c - offW
			if iw < 0 || iw >= limW {
				continue
			}
			dst[c] = data[base+ih*sh+iw*sw]
		}
	}
}

// blendRows blends the top-left rows x cols corner of the real scratch
// plane re (row stride q) into the output at data[base + oh*sh + ow].
//
//ucudnn:hotpath
func blendRows(data []float32, base, sh int, re []float32, q, rows, cols int, alpha, beta float32) {
	for oh := 0; oh < rows; oh++ {
		src := re[oh*q : oh*q+cols]
		for ow := range src {
			blend(&data[base+oh*sh+ow], src[ow], alpha, beta)
		}
	}
}

// zeroPlane clears one stored plane.
//
//ucudnn:hotpath
func zeroPlane(dst []float32) {
	for i := range dst {
		dst[i] = 0
	}
}

// accumMulConj computes dst += a * conj(b) over interleaved complex planes.
// This is the spectral form of correlation (the DL "convolution").
//
//ucudnn:hotpath
func accumMulConj(dst, a, b []float32) {
	for i := 0; i < len(dst); i += 2 {
		ar, ai := a[i], a[i+1]
		br, bi := b[i], b[i+1]
		dst[i] += ar*br + ai*bi
		dst[i+1] += ai*br - ar*bi
	}
}

// fftPlanes returns the worst-case padded plane dimensions over the three
// operations, used by the support predicate to bound plan sizes.
func fftPlanes(cs tensor.ConvShape) (int, int) {
	p := cs.Params.Normalized()
	rows := imax(cs.In.H+2*p.PadH, cs.In.H+cs.Filt.R-1)
	cols := imax(cs.In.W+2*p.PadW, cs.In.W+cs.Filt.S-1)
	return fftpkg.NextPow2(rows), fftpkg.NextPow2(cols)
}

// fftPlanFor returns the spectral plan of op on cs.
func fftPlanFor(op Op, cs tensor.ConvShape) spectralPlan {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	switch op {
	case Forward, BackwardFilter:
		// Correlate the padded input (with the filter, or with dY).
		return newSpectralPlan(cs.In.H+2*p.PadH, cs.In.W+2*p.PadW)
	case BackwardData:
		// Correlate dY padded by (R-1-pad) with the rotated filter; the
		// padded extent is OH + 2(R-1-pad) = H + R - 1.
		return newSpectralPlan(out.H+2*(cs.Filt.R-1-p.PadH), out.W+2*(cs.Filt.S-1-p.PadW))
	}
	panic("conv: bad op")
}

// fftFilterChunk is how many filter-bank rows (output channels for
// Forward/BackwardFilter, input channels for BackwardData) have their
// spectra resident at once. Chunking the filter planes makes the FFT
// workspace batch-dominated — the property micro-batching exploits.
const fftFilterChunk = 32

// fftChunkPlanes returns the number of resident filter-spectrum planes.
func fftChunkPlanes(op Op, cs tensor.ConvShape) int {
	c, k := cs.In.C, cs.Filt.K
	if op == BackwardData {
		return imin(c, fftFilterChunk) * k
	}
	return imin(k, fftFilterChunk) * c
}

// fftOverheadFloats is the non-plane part of the FFT workspace: the
// twiddle tables plus one transform scratch arena per worker.
func fftOverheadFloats(pl spectralPlan, workers int) int64 {
	return int64(pl.tableFloats()) + int64(workers)*int64(pl.scratchFloats())
}

// fftWorkspace returns the full-plane FFT workspace: one chunk of filter
// spectra plus spectra for every input and output plane — the
// (chunk + N*C + N*K) structure that makes FFT the memory-hungry,
// batch-proportional algorithm in the paper — plus the twiddle tables
// and per-worker transform scratch. With minimal set, scratch for a
// single worker: the floor at which Run degrades to the serial walk.
func fftWorkspace(op Op, cs tensor.ConvShape, minimal bool) int64 {
	pl := fftPlanFor(op, cs)
	n, c, k := int64(cs.In.N), int64(cs.In.C), int64(cs.Filt.K)
	planes := int64(fftChunkPlanes(op, cs)) + n*c + n*k
	workers := 1
	if !minimal {
		workers = MaxWorkers()
	}
	return (planes*int64(pl.planeFloats()) + fftOverheadFloats(pl, workers)) * 4
}

// fftTilingWorkspace returns the tiled-FFT workspace: filter spectra at
// the fixed tile size plus one tile's worth of input/output spectra,
// reused across tiles, plus tables and per-worker scratch.
func fftTilingWorkspace(op Op, cs tensor.ConvShape, minimal bool) int64 {
	pl := newSpectralPlan(fftTile, fftTile)
	n, c, k := int64(cs.In.N), int64(cs.In.C), int64(cs.Filt.K)
	planes := k*c + n*c + n*k
	workers := 1
	if !minimal {
		workers = MaxWorkers()
	}
	return (planes*int64(pl.planeFloats()) + fftOverheadFloats(pl, workers)) * 4
}

// fftStage identifies one fan-out stage of the FFT kernels; fftCtx.stageTask
// dispatches on it so the serial path runs as plain method calls with no
// closures (the zero-allocation steady state), while the parallel path
// wraps the same dispatch in one escaping closure per launch.
type fftStage int

const (
	stFullFwdX         fftStage = iota // padded input planes -> xspec
	stFullFwdW                         // filter chunk planes -> wspec
	stFullFwdWRot                      // rotated filter chunk -> wspec (BackwardData)
	stFullFwdDYPad                     // padded dY planes -> yspec (BackwardData)
	stFullFwdDY                        // unpadded dY planes -> yspec (BackwardFilter)
	stFullCombineFwd                   // accumulate+inverse+blend into y
	stFullCombineBwd                   // accumulate+inverse+blend into dX
	stFullCombineWgrad                 // accumulate+inverse+blend into dW

	stTileFwdW        // filter planes at tile size -> wspec
	stTileBwdW        // rotated filter planes -> wspec
	stTileFwdX        // input tile planes -> xspec
	stTileBwdDY       // padded dY tile planes -> yspec
	stTileWgradDY     // output-tile dY planes -> yspec (BackwardFilter)
	stTileZeroW       // clear the wspec accumulators
	stTileWgradAcc    // accumulate one tile's contribution into wspec
	stTileWgradFinish // inverse+blend wspec into dW
	stTileCombineFwd  // accumulate+inverse+blend one tile into y
	stTileCombineBwd  // accumulate+inverse+blend one tile into dX
)

// fftCtx carries the FFT kernel state: the spectral plan and its
// workspace-carved twiddle tables, the three spectrum regions, and the
// per-worker transform scratch. Stage parameters (filter-chunk base,
// tile origin) are plain fields set between stages.
type fftCtx struct {
	x           *tensor.Tensor
	w           *tensor.FilterTensor
	y           *tensor.Tensor
	alpha, beta float32

	in           tensor.Shape
	out          tensor.Shape
	f            tensor.Filter
	n, c, k      int
	padH, padW   int // forward input padding
	padBH, padBW int // BackwardData dY padding: R-1-padH, S-1-padW

	pl                  spectralPlan
	plan                fftpkg.Plan2D
	pf                  int // floats per stored plane
	wspec, xspec, yspec []float32
	scr                 []float32
	sf                  int // scratch floats per worker
	workers             int

	fb, fc       int // filter-chunk base and count (k0/kc or c0/ccnt)
	baseH, baseW int // tile origin (FFT_TILING)
	toH, toW     int // usable tile output extents (FFT_TILING)
}

// newFFTCtx carves ws into the spectrum regions, the twiddle tables, and
// as many per-worker scratch arenas as the granted workspace holds (at
// least one: Run has validated the MinWorkspace floor), so a smaller
// grant degrades parallelism without changing any result bit.
func newFFTCtx(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32, tiling bool) fftCtx {
	p := cs.Params.Normalized()
	in, out, f := cs.In, cs.OutShape(), cs.Filt
	var pl spectralPlan
	var wplanes int
	if tiling {
		pl = newSpectralPlan(fftTile, fftTile)
		wplanes = f.K * in.C
	} else {
		pl = fftPlanFor(op, cs)
		wplanes = fftChunkPlanes(op, cs)
	}
	g := fftCtx{
		x: x, w: w, y: y, alpha: alpha, beta: beta,
		in: in, out: out, f: f,
		n: in.N, c: in.C, k: f.K,
		padH: p.PadH, padW: p.PadW,
		padBH: f.R - 1 - p.PadH, padBW: f.S - 1 - p.PadW,
		pl: pl, pf: pl.planeFloats(),
	}
	planes := wplanes + g.n*g.c + g.n*g.k
	g.wspec = ws[:wplanes*g.pf]
	g.xspec = ws[wplanes*g.pf : (wplanes+g.n*g.c)*g.pf]
	g.yspec = ws[(wplanes+g.n*g.c)*g.pf : planes*g.pf]
	off := planes * g.pf
	tf := pl.tableFloats()
	g.plan = fftpkg.NewPlan2D(pl.p, pl.q, ws[off:off+tf])
	off += tf
	g.sf = pl.scratchFloats()
	g.workers = imin(MaxWorkers(), (len(ws)-off)/g.sf)
	if g.workers < 1 {
		g.workers = 1
	}
	g.scr = ws[off : off+g.workers*g.sf]
	return g
}

// scrFor returns worker wk's real plane and spectrum-row swap scratch.
//
//ucudnn:hotpath
func (g *fftCtx) scrFor(wk int) (re, tmp []float32) {
	s := g.scr[wk*g.sf : (wk+1)*g.sf]
	pq := g.pl.p * g.pl.q
	return s[:pq], s[pq:]
}

// fwdPlane embeds one real source plane into worker wk's scratch and
// forward-transforms it into the stored half-spectrum dst. Only the
// embedded rows are transformed: the plan treats the rest as exact
// zeros, which makes small-filter planes (3 nonzero rows in a 32-row
// tile) much cheaper than full transforms.
//
//ucudnn:hotpath
func (g *fftCtx) fwdPlane(wk int, dst, data []float32, base, sh, sw, rows, cols, offH, offW, limH, limW int) {
	re, tmp := g.scrFor(wk)
	embedPlane(re, g.pl.q, rows, cols, data, base, sh, sw, offH, offW, limH, limW)
	g.plan.FwdReal(dst, re, tmp, rows)
}

// invBlend inverse-transforms the accumulated half-spectrum acc
// (destroyed) in worker wk's scratch and blends its top-left rows x cols
// corner into data at base with row stride sh.
//
//ucudnn:hotpath
func (g *fftCtx) invBlend(wk int, acc, data []float32, base, sh, rows, cols int) {
	re, tmp := g.scrFor(wk)
	g.plan.InvReal(re, acc, tmp)
	blendRows(data, base, sh, re, g.pl.q, rows, cols, g.alpha, g.beta)
}

// stageTask executes task i of stage st in worker wk's scratch. The
// combine stages time their own pointwise/inverse split; the transform
// stages are timed chunk-level by forEach.
//
//ucudnn:hotpath
func (g *fftCtx) stageTask(st fftStage, wk, i int) {
	pf := g.pf
	switch st {
	case stFullFwdX:
		nn, cc := i/g.c, i%g.c
		g.fwdPlane(wk, g.xspec[i*pf:(i+1)*pf], g.x.Data, g.x.Index(nn, cc, 0, 0), g.in.W, 1,
			g.in.H+2*g.padH, g.in.W+2*g.padW, g.padH, g.padW, g.in.H, g.in.W)
	case stFullFwdW:
		dk, cc := i/g.c, i%g.c
		g.fwdPlane(wk, g.wspec[i*pf:(i+1)*pf], g.w.Data, g.w.Index(g.fb+dk, cc, 0, 0), g.f.S, 1,
			g.f.R, g.f.S, 0, 0, g.f.R, g.f.S)
	case stFullFwdWRot:
		dc, kk := i/g.k, i%g.k
		g.fwdPlane(wk, g.wspec[i*pf:(i+1)*pf], g.w.Data, g.w.Index(kk, g.fb+dc, g.f.R-1, g.f.S-1), -g.f.S, -1,
			g.f.R, g.f.S, 0, 0, g.f.R, g.f.S)
	case stFullFwdDYPad:
		nn, kk := i/g.k, i%g.k
		g.fwdPlane(wk, g.yspec[i*pf:(i+1)*pf], g.y.Data, g.y.Index(nn, kk, 0, 0), g.out.W, 1,
			g.out.H+2*g.padBH, g.out.W+2*g.padBW, g.padBH, g.padBW, g.out.H, g.out.W)
	case stFullFwdDY:
		nn, kk := i/g.k, i%g.k
		g.fwdPlane(wk, g.yspec[i*pf:(i+1)*pf], g.y.Data, g.y.Index(nn, kk, 0, 0), g.out.W, 1,
			g.out.H, g.out.W, 0, 0, g.out.H, g.out.W)
	case stFullCombineFwd:
		nn, dk := i/g.fc, i%g.fc
		kk := g.fb + dk
		acc := g.yspec[(nn*g.k+kk)*pf : (nn*g.k+kk+1)*pf]
		t := prof.Enter()
		zeroPlane(acc)
		for cc := 0; cc < g.c; cc++ {
			accumMulConj(acc, g.xspec[(nn*g.c+cc)*pf:(nn*g.c+cc+1)*pf], g.wspec[(dk*g.c+cc)*pf:(dk*g.c+cc+1)*pf])
		}
		t = prof.Next(phRFFTPointwise, t)
		g.invBlend(wk, acc, g.y.Data, g.y.Index(nn, kk, 0, 0), g.out.W, g.out.H, g.out.W)
		prof.Exit(phRFFTInverse, t)
	case stFullCombineBwd:
		nn, dc := i/g.fc, i%g.fc
		cc := g.fb + dc
		acc := g.xspec[(nn*g.c+cc)*pf : (nn*g.c+cc+1)*pf]
		t := prof.Enter()
		zeroPlane(acc)
		for kk := 0; kk < g.k; kk++ {
			accumMulConj(acc, g.yspec[(nn*g.k+kk)*pf:(nn*g.k+kk+1)*pf], g.wspec[(dc*g.k+kk)*pf:(dc*g.k+kk+1)*pf])
		}
		t = prof.Next(phRFFTPointwise, t)
		g.invBlend(wk, acc, g.x.Data, g.x.Index(nn, cc, 0, 0), g.in.W, g.in.H, g.in.W)
		prof.Exit(phRFFTInverse, t)
	case stFullCombineWgrad:
		dk, cc := i/g.c, i%g.c
		kk := g.fb + dk
		acc := g.wspec[i*pf : (i+1)*pf]
		t := prof.Enter()
		zeroPlane(acc)
		for nn := 0; nn < g.n; nn++ {
			accumMulConj(acc, g.xspec[(nn*g.c+cc)*pf:(nn*g.c+cc+1)*pf], g.yspec[(nn*g.k+kk)*pf:(nn*g.k+kk+1)*pf])
		}
		t = prof.Next(phRFFTPointwise, t)
		g.invBlend(wk, acc, g.w.Data, g.w.Index(kk, cc, 0, 0), g.f.S, g.f.R, g.f.S)
		prof.Exit(phRFFTInverse, t)

	case stTileFwdW:
		kk, cc := i/g.c, i%g.c
		g.fwdPlane(wk, g.wspec[i*pf:(i+1)*pf], g.w.Data, g.w.Index(kk, cc, 0, 0), g.f.S, 1,
			g.f.R, g.f.S, 0, 0, g.f.R, g.f.S)
	case stTileBwdW:
		cc, kk := i/g.k, i%g.k
		g.fwdPlane(wk, g.wspec[i*pf:(i+1)*pf], g.w.Data, g.w.Index(kk, cc, g.f.R-1, g.f.S-1), -g.f.S, -1,
			g.f.R, g.f.S, 0, 0, g.f.R, g.f.S)
	case stTileFwdX:
		nn, cc := i/g.c, i%g.c
		g.fwdPlane(wk, g.xspec[i*pf:(i+1)*pf], g.x.Data, g.x.Index(nn, cc, 0, 0), g.in.W, 1,
			fftTile, fftTile, g.padH-g.baseH, g.padW-g.baseW, g.in.H, g.in.W)
	case stTileBwdDY:
		nn, kk := i/g.k, i%g.k
		g.fwdPlane(wk, g.yspec[i*pf:(i+1)*pf], g.y.Data, g.y.Index(nn, kk, 0, 0), g.out.W, 1,
			fftTile, fftTile, g.padBH-g.baseH, g.padBW-g.baseW, g.out.H, g.out.W)
	case stTileWgradDY:
		nn, kk := i/g.k, i%g.k
		g.fwdPlane(wk, g.yspec[i*pf:(i+1)*pf], g.y.Data, g.y.Index(nn, kk, 0, 0), g.out.W, 1,
			g.toH, g.toW, -g.baseH, -g.baseW, g.out.H, g.out.W)
	case stTileZeroW:
		zeroPlane(g.wspec[i*pf : (i+1)*pf])
	case stTileWgradAcc:
		kk, cc := i/g.c, i%g.c
		acc := g.wspec[i*pf : (i+1)*pf]
		for nn := 0; nn < g.n; nn++ {
			accumMulConj(acc, g.xspec[(nn*g.c+cc)*pf:(nn*g.c+cc+1)*pf], g.yspec[(nn*g.k+kk)*pf:(nn*g.k+kk+1)*pf])
		}
	case stTileWgradFinish:
		kk, cc := i/g.c, i%g.c
		g.invBlend(wk, g.wspec[i*pf:(i+1)*pf], g.w.Data, g.w.Index(kk, cc, 0, 0), g.f.S, g.f.R, g.f.S)
	case stTileCombineFwd:
		nn, kk := i/g.k, i%g.k
		acc := g.yspec[i*pf : (i+1)*pf]
		t := prof.Enter()
		zeroPlane(acc)
		for cc := 0; cc < g.c; cc++ {
			accumMulConj(acc, g.xspec[(nn*g.c+cc)*pf:(nn*g.c+cc+1)*pf], g.wspec[(kk*g.c+cc)*pf:(kk*g.c+cc+1)*pf])
		}
		t = prof.Next(phRFFTPointwise, t)
		g.invBlend(wk, acc, g.y.Data, g.y.Index(nn, kk, g.baseH, g.baseW), g.out.W,
			imin(g.toH, g.out.H-g.baseH), imin(g.toW, g.out.W-g.baseW))
		prof.Exit(phRFFTInverse, t)
	case stTileCombineBwd:
		nn, cc := i/g.c, i%g.c
		acc := g.xspec[i*pf : (i+1)*pf]
		t := prof.Enter()
		zeroPlane(acc)
		for kk := 0; kk < g.k; kk++ {
			accumMulConj(acc, g.yspec[(nn*g.k+kk)*pf:(nn*g.k+kk+1)*pf], g.wspec[(cc*g.k+kk)*pf:(cc*g.k+kk+1)*pf])
		}
		t = prof.Next(phRFFTPointwise, t)
		g.invBlend(wk, acc, g.x.Data, g.x.Index(nn, cc, g.baseH, g.baseW), g.in.W,
			imin(g.toH, g.in.H-g.baseH), imin(g.toW, g.in.W-g.baseW))
		prof.Exit(phRFFTInverse, t)
	}
}

// forEach runs stage st over n tasks with the chunk timed as phase ph.
// The serial path (one worker or one task) is plain calls — no closure,
// no allocation; the parallel path captures a copy of the context in
// one escaping closure per launch.
func (g *fftCtx) forEach(ph prof.Kind, n int, st fftStage) {
	workers := imin(g.workers, n)
	if workers <= 1 {
		t := prof.Enter()
		for i := 0; i < n; i++ {
			g.stageTask(st, 0, i)
		}
		prof.Exit(ph, t)
		return
	}
	gc := *g
	phaseForW(ph, workers, n, func(wk, i int) { gc.stageTask(st, wk, i) })
}

// forEachRaw is forEach for the self-timing combine stages, whose tasks
// split their own time between the pointwise and inverse phases.
func (g *fftCtx) forEachRaw(n int, st fftStage) {
	workers := imin(g.workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			g.stageTask(st, 0, i)
		}
		return
	}
	gc := *g
	parallelForW(workers, n, func(wk, i int) { gc.stageTask(st, wk, i) })
}

// runFFT executes the full-plane FFT convolution.
func runFFT(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) {
	g := newFFTCtx(op, cs, x, w, y, alpha, beta, ws, false)
	switch op {
	case Forward:
		// Padded-input spectra (resident for all chunks), then per chunk
		// of output channels: filter spectra, pointwise accumulate over
		// input channels, inverse, blend.
		g.forEach(phRFFTForward, g.n*g.c, stFullFwdX)
		kch := imin(g.k, fftFilterChunk)
		for k0 := 0; k0 < g.k; k0 += kch {
			g.fb, g.fc = k0, imin(kch, g.k-k0)
			g.forEach(phRFFTForward, g.fc*g.c, stFullFwdW)
			g.forEachRaw(g.n*g.fc, stFullCombineFwd)
		}
	case BackwardData:
		// dX[n,c] = sum_k corr(padded dY[n,k], rot(w[k,c])).
		g.forEach(phRFFTForward, g.n*g.k, stFullFwdDYPad)
		cch := imin(g.c, fftFilterChunk)
		for c0 := 0; c0 < g.c; c0 += cch {
			g.fb, g.fc = c0, imin(cch, g.c-c0)
			g.forEach(phRFFTForward, g.fc*g.k, stFullFwdWRot)
			g.forEachRaw(g.n*g.fc, stFullCombineBwd)
		}
	case BackwardFilter:
		// dW[k,c] = sum_n corr(padded X[n,c], dY[n,k])[0:R, 0:S].
		g.forEach(phRFFTForward, g.n*g.c, stFullFwdX)
		g.forEach(phRFFTForward, g.n*g.k, stFullFwdDY)
		kch := imin(g.k, fftFilterChunk)
		for k0 := 0; k0 < g.k; k0 += kch {
			g.fb, g.fc = k0, imin(kch, g.k-k0)
			g.forEachRaw(g.fc*g.c, stFullCombineWgrad)
		}
	}
}

// runFFTTiling executes the 32x32-tiled FFT convolution: filter spectra
// are computed once at the tile size and reused across spatial tiles,
// while input/output tile spectra are recomputed per tile, bounding the
// workspace independently of the spatial extent.
func runFFTTiling(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) {
	g := newFFTCtx(op, cs, x, w, y, alpha, beta, ws, true)
	g.toH, g.toW = fftTile-g.f.R+1, fftTile-g.f.S+1
	switch op {
	case Forward:
		tilesH, tilesW := ceilDiv(g.out.H, g.toH), ceilDiv(g.out.W, g.toW)
		g.forEach(phRFFTForward, g.k*g.c, stTileFwdW)
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				g.baseH, g.baseW = th*g.toH, tw*g.toW
				g.forEach(phRFFTForward, g.n*g.c, stTileFwdX)
				g.forEachRaw(g.n*g.k, stTileCombineFwd)
			}
		}
	case BackwardData:
		// Same structure on the rotated filter and padded dY, tiled over dX.
		tilesH, tilesW := ceilDiv(g.in.H, g.toH), ceilDiv(g.in.W, g.toW)
		g.forEach(phRFFTForward, g.c*g.k, stTileBwdW)
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				g.baseH, g.baseW = th*g.toH, tw*g.toW
				g.forEach(phRFFTForward, g.n*g.k, stTileBwdDY)
				g.forEachRaw(g.n*g.c, stTileCombineBwd)
			}
		}
	case BackwardFilter:
		// Tile the summation domain: each tile contributes a partial
		// correlation of the padded input patch with the dY patch;
		// contributions accumulate in spectral space in wspec.
		tilesH, tilesW := ceilDiv(g.out.H, g.toH), ceilDiv(g.out.W, g.toW)
		g.forEach(phRFFTPointwise, g.k*g.c, stTileZeroW)
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				g.baseH, g.baseW = th*g.toH, tw*g.toW
				g.forEach(phRFFTForward, g.n*g.c, stTileFwdX)
				g.forEach(phRFFTForward, g.n*g.k, stTileWgradDY)
				g.forEach(phRFFTPointwise, g.k*g.c, stTileWgradAcc)
			}
		}
		g.forEach(phRFFTInverse, g.k*g.c, stTileWgradFinish)
	}
}
