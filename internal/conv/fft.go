package conv

import (
	"ucudnn/internal/fftpkg"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
)

// fftTile is the fixed spatial FFT size of the FFT_TILING algorithm,
// matching cuDNN's 32x32 tiles.
const fftTile = 32

// A spectralPlan describes the 2-D FFT geometry shared by all planes of
// one convolution call: a P x Q transform (powers of two) of which only
// the Hermitian half-spectrum (P rows x Q/2+1 columns) is stored, exactly
// as cuFFT's R2C transforms do. Each stored plane is interleaved
// (re, im) float32 pairs.
type spectralPlan struct {
	p, q, hw int // hw = q/2 + 1
}

func newSpectralPlan(rows, cols int) spectralPlan {
	p := fftpkg.NextPow2(rows)
	q := fftpkg.NextPow2(cols)
	return spectralPlan{p: p, q: q, hw: q/2 + 1}
}

// planeFloats returns the number of float32 elements per stored plane.
func (pl spectralPlan) planeFloats() int { return 2 * pl.p * pl.hw }

// scratchBlock returns one full-plane complex work buffer per engine
// worker, as a single backing allocation; scratchFor slices out worker
// wk's plane. Allocating the block once per Run (instead of one plane
// per task) keeps the FFT kernels' steady-state allocation count flat in
// the tile and plane counts.
func (pl spectralPlan) scratchBlock(workers int) []complex128 {
	return make([]complex128, workers*pl.p*pl.q)
}

//ucudnn:hotpath
func (pl spectralPlan) scratchFor(block []complex128, wk int) []complex128 {
	n := pl.p * pl.q
	return block[wk*n : (wk+1)*n]
}

// fwdInto transforms a real rows x cols gather into dst's half-spectrum.
// gather(r, c) is only called for r < rows, c < cols; the rest is zero.
//
//ucudnn:hotpath
func (pl spectralPlan) fwdInto(dst []float32, rows, cols int, gather func(r, c int) float32, scratch []complex128) {
	for i := range scratch {
		scratch[i] = 0
	}
	for r := 0; r < rows; r++ {
		base := r * pl.q
		for c := 0; c < cols; c++ {
			scratch[base+c] = complex(float64(gather(r, c)), 0)
		}
	}
	fftpkg.Forward2D(scratch, pl.p, pl.q)
	for r := 0; r < pl.p; r++ {
		for c := 0; c < pl.hw; c++ {
			v := scratch[r*pl.q+c]
			dst[2*(r*pl.hw+c)] = float32(real(v))
			dst[2*(r*pl.hw+c)+1] = float32(imag(v))
		}
	}
}

// invFrom reconstructs the full Hermitian spectrum from src and inverse-
// transforms it; the real result is left in scratch (row stride pl.q).
//
//ucudnn:hotpath
func (pl spectralPlan) invFrom(src []float32, scratch []complex128) {
	for r := 0; r < pl.p; r++ {
		for c := 0; c < pl.hw; c++ {
			scratch[r*pl.q+c] = complex(
				float64(src[2*(r*pl.hw+c)]),
				float64(src[2*(r*pl.hw+c)+1]))
		}
	}
	// Second pass: the mirror source (mc < hw) is now filled for all rows.
	for r := 0; r < pl.p; r++ {
		for c := pl.hw; c < pl.q; c++ {
			mr := (pl.p - r) % pl.p
			mc := pl.q - c
			v := scratch[mr*pl.q+mc]
			scratch[r*pl.q+c] = complex(real(v), -imag(v))
		}
	}
	fftpkg.Inverse2D(scratch, pl.p, pl.q)
}

// zeroPlane clears one stored plane.
//
//ucudnn:hotpath
func zeroPlane(dst []float32) {
	for i := range dst {
		dst[i] = 0
	}
}

// accumMulConj computes dst += a * conj(b) over interleaved complex planes.
// This is the spectral form of correlation (the DL "convolution").
//
//ucudnn:hotpath
func accumMulConj(dst, a, b []float32) {
	for i := 0; i < len(dst); i += 2 {
		ar, ai := a[i], a[i+1]
		br, bi := b[i], b[i+1]
		dst[i] += ar*br + ai*bi
		dst[i+1] += ai*br - ar*bi
	}
}

// fftPlanes returns the worst-case padded plane dimensions over the three
// operations, used by the support predicate to bound plan sizes.
func fftPlanes(cs tensor.ConvShape) (int, int) {
	p := cs.Params.Normalized()
	rows := imax(cs.In.H+2*p.PadH, cs.In.H+cs.Filt.R-1)
	cols := imax(cs.In.W+2*p.PadW, cs.In.W+cs.Filt.S-1)
	return fftpkg.NextPow2(rows), fftpkg.NextPow2(cols)
}

// fftPlanFor returns the spectral plan of op on cs.
func fftPlanFor(op Op, cs tensor.ConvShape) spectralPlan {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	switch op {
	case Forward, BackwardFilter:
		// Correlate the padded input (with the filter, or with dY).
		return newSpectralPlan(cs.In.H+2*p.PadH, cs.In.W+2*p.PadW)
	case BackwardData:
		// Correlate dY padded by (R-1-pad) with the rotated filter; the
		// padded extent is OH + 2(R-1-pad) = H + R - 1.
		return newSpectralPlan(out.H+2*(cs.Filt.R-1-p.PadH), out.W+2*(cs.Filt.S-1-p.PadW))
	}
	panic("conv: bad op")
}

// fftFilterChunk is how many filter-bank rows (output channels for
// Forward/BackwardFilter, input channels for BackwardData) have their
// spectra resident at once. Chunking the filter planes makes the FFT
// workspace batch-dominated — the property micro-batching exploits.
const fftFilterChunk = 32

// fftChunkPlanes returns the number of resident filter-spectrum planes.
func fftChunkPlanes(op Op, cs tensor.ConvShape) int {
	c, k := cs.In.C, cs.Filt.K
	if op == BackwardData {
		return imin(c, fftFilterChunk) * k
	}
	return imin(k, fftFilterChunk) * c
}

// fftWorkspace returns the full-plane FFT workspace: one chunk of filter
// spectra plus spectra for every input and output plane — the
// (chunk + N*C + N*K) structure that makes FFT the memory-hungry,
// batch-proportional algorithm in the paper.
func fftWorkspace(op Op, cs tensor.ConvShape) int64 {
	pl := fftPlanFor(op, cs)
	n, c, k := int64(cs.In.N), int64(cs.In.C), int64(cs.Filt.K)
	planes := int64(fftChunkPlanes(op, cs)) + n*c + n*k
	return planes * int64(pl.planeFloats()) * 4
}

// fftTilingWorkspace returns the tiled-FFT workspace: filter spectra at
// the fixed tile size plus one tile's worth of input/output spectra,
// reused across tiles.
func fftTilingWorkspace(op Op, cs tensor.ConvShape) int64 {
	pl := newSpectralPlan(fftTile, fftTile)
	n, c, k := int64(cs.In.N), int64(cs.In.C), int64(cs.Filt.K)
	planes := k*c + n*c + n*k
	return planes * int64(pl.planeFloats()) * 4
}

// runFFT executes the full-plane FFT convolution.
func runFFT(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	pl := fftPlanFor(op, cs)
	pf := pl.planeFloats()

	n, c, k := in.N, in.C, f.K
	chunk := fftChunkPlanes(op, cs)
	wspec := ws[:chunk*pf]
	xspec := ws[chunk*pf : (chunk+n*c)*pf]
	yspec := ws[(chunk+n*c)*pf : (chunk+n*c+n*k)*pf]
	workers := MaxWorkers()
	scrBlock := pl.scratchBlock(workers)

	switch op {
	case Forward:
		kch := imin(k, fftFilterChunk)
		// Padded-input spectra (resident for all chunks).
		phaseForW(phFFTForward, workers, n*c, func(wk, i int) {
			nn, cc := i/c, i%c
			scr := pl.scratchFor(scrBlock, wk)
			pl.fwdInto(xspec[i*pf:(i+1)*pf], in.H+2*p.PadH, in.W+2*p.PadW, func(r, s int) float32 {
				ih, iw := r-p.PadH, s-p.PadW
				if ih < 0 || ih >= in.H || iw < 0 || iw >= in.W {
					return 0
				}
				return x.At(nn, cc, ih, iw)
			}, scr)
		})
		for k0 := 0; k0 < k; k0 += kch {
			kc := imin(kch, k-k0)
			// Filter spectra for this chunk of output channels.
			phaseForW(phFFTForward, workers, kc*c, func(wk, i int) {
				dk, cc := i/c, i%c
				scr := pl.scratchFor(scrBlock, wk)
				pl.fwdInto(wspec[i*pf:(i+1)*pf], f.R, f.S, func(r, s int) float32 {
					return w.At(k0+dk, cc, r, s)
				}, scr)
			})
			// Pointwise accumulate over channels, inverse, blend. The task
			// mixes two phases, so the split is per task rather than per
			// chunk (each half is FFT-plane-sized, far above timer cost).
			parallelForW(workers, n*kc, func(wk, i int) {
				nn, dk := i/kc, i%kc
				kk := k0 + dk
				acc := yspec[(nn*k+kk)*pf : (nn*k+kk+1)*pf]
				t := prof.Enter()
				zeroPlane(acc)
				for cc := 0; cc < c; cc++ {
					accumMulConj(acc, xspec[(nn*c+cc)*pf:(nn*c+cc+1)*pf], wspec[(dk*c+cc)*pf:(dk*c+cc+1)*pf])
				}
				t = prof.Next(phFFTPointwise, t)
				scr := pl.scratchFor(scrBlock, wk)
				pl.invFrom(acc, scr)
				for oh := 0; oh < out.H; oh++ {
					for ow := 0; ow < out.W; ow++ {
						blend(&y.Data[y.Index(nn, kk, oh, ow)], float32(real(scr[oh*pl.q+ow])), alpha, beta)
					}
				}
				prof.Exit(phFFTInverse, t)
			})
		}
	case BackwardData:
		padB, padBW := f.R-1-p.PadH, f.S-1-p.PadW
		cch := imin(c, fftFilterChunk)
		// Padded dY spectra, stored in yspec [n][k], resident.
		phaseForW(phFFTForward, workers, n*k, func(wk, i int) {
			nn, kk := i/k, i%k
			scr := pl.scratchFor(scrBlock, wk)
			pl.fwdInto(yspec[i*pf:(i+1)*pf], out.H+2*padB, out.W+2*padBW, func(r, s int) float32 {
				oh, ow := r-padB, s-padBW
				if oh < 0 || oh >= out.H || ow < 0 || ow >= out.W {
					return 0
				}
				return y.At(nn, kk, oh, ow)
			}, scr)
		})
		for c0 := 0; c0 < c; c0 += cch {
			ccnt := imin(cch, c-c0)
			// Rotated-filter spectra for this chunk of input channels,
			// indexed [dc][k].
			phaseForW(phFFTForward, workers, ccnt*k, func(wk, i int) {
				dc, kk := i/k, i%k
				scr := pl.scratchFor(scrBlock, wk)
				pl.fwdInto(wspec[i*pf:(i+1)*pf], f.R, f.S, func(r, s int) float32 {
					return w.At(kk, c0+dc, f.R-1-r, f.S-1-s)
				}, scr)
			})
			// dX[n,c] = sum_k corr(padded dY[n,k], rot(w[k,c])).
			parallelForW(workers, n*ccnt, func(wk, i int) {
				nn, dc := i/ccnt, i%ccnt
				cc := c0 + dc
				acc := xspec[(nn*c+cc)*pf : (nn*c+cc+1)*pf]
				t := prof.Enter()
				zeroPlane(acc)
				for kk := 0; kk < k; kk++ {
					accumMulConj(acc, yspec[(nn*k+kk)*pf:(nn*k+kk+1)*pf], wspec[(dc*k+kk)*pf:(dc*k+kk+1)*pf])
				}
				t = prof.Next(phFFTPointwise, t)
				scr := pl.scratchFor(scrBlock, wk)
				pl.invFrom(acc, scr)
				for ih := 0; ih < in.H; ih++ {
					for iw := 0; iw < in.W; iw++ {
						blend(&x.Data[x.Index(nn, cc, ih, iw)], float32(real(scr[ih*pl.q+iw])), alpha, beta)
					}
				}
				prof.Exit(phFFTInverse, t)
			})
		}
	case BackwardFilter:
		kch := imin(k, fftFilterChunk)
		// dW[k,c] = sum_n corr(padded X[n,c], dY[n,k])[0:R, 0:S].
		phaseForW(phFFTForward, workers, n*c, func(wk, i int) {
			nn, cc := i/c, i%c
			scr := pl.scratchFor(scrBlock, wk)
			pl.fwdInto(xspec[i*pf:(i+1)*pf], in.H+2*p.PadH, in.W+2*p.PadW, func(r, s int) float32 {
				ih, iw := r-p.PadH, s-p.PadW
				if ih < 0 || ih >= in.H || iw < 0 || iw >= in.W {
					return 0
				}
				return x.At(nn, cc, ih, iw)
			}, scr)
		})
		phaseForW(phFFTForward, workers, n*k, func(wk, i int) {
			nn, kk := i/k, i%k
			scr := pl.scratchFor(scrBlock, wk)
			pl.fwdInto(yspec[i*pf:(i+1)*pf], out.H, out.W, func(r, s int) float32 {
				return y.At(nn, kk, r, s)
			}, scr)
		})
		for k0 := 0; k0 < k; k0 += kch {
			kc := imin(kch, k-k0)
			parallelForW(workers, kc*c, func(wk, i int) {
				dk, cc := i/c, i%c
				kk := k0 + dk
				acc := wspec[i*pf : (i+1)*pf]
				t := prof.Enter()
				zeroPlane(acc)
				for nn := 0; nn < n; nn++ {
					accumMulConj(acc, xspec[(nn*c+cc)*pf:(nn*c+cc+1)*pf], yspec[(nn*k+kk)*pf:(nn*k+kk+1)*pf])
				}
				t = prof.Next(phFFTPointwise, t)
				scr := pl.scratchFor(scrBlock, wk)
				pl.invFrom(acc, scr)
				for r := 0; r < f.R; r++ {
					for s := 0; s < f.S; s++ {
						blend(&w.Data[w.Index(kk, cc, r, s)], float32(real(scr[r*pl.q+s])), alpha, beta)
					}
				}
				prof.Exit(phFFTInverse, t)
			})
		}
	}
}

// runFFTTiling executes the 32x32-tiled FFT convolution: filter spectra
// are computed once at the tile size and reused across spatial tiles,
// while input/output tile spectra are recomputed per tile, bounding the
// workspace independently of the spatial extent.
func runFFTTiling(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	pl := newSpectralPlan(fftTile, fftTile)
	pf := pl.planeFloats()
	n, c, k := in.N, in.C, f.K
	wspec := ws[:k*c*pf]
	xspec := ws[k*c*pf : (k*c+n*c)*pf]
	yspec := ws[(k*c+n*c)*pf : (k*c+n*c+n*k)*pf]
	workers := MaxWorkers()
	scrBlock := pl.scratchBlock(workers)

	switch op {
	case Forward:
		tileOutH, tileOutW := fftTile-f.R+1, fftTile-f.S+1
		tilesH, tilesW := ceilDiv(out.H, tileOutH), ceilDiv(out.W, tileOutW)
		phaseForW(phFFTForward, workers, k*c, func(wk, i int) {
			kk, cc := i/c, i%c
			scr := pl.scratchFor(scrBlock, wk)
			pl.fwdInto(wspec[i*pf:(i+1)*pf], f.R, f.S, func(r, s int) float32 {
				return w.At(kk, cc, r, s)
			}, scr)
		})
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				baseH, baseW := th*tileOutH, tw*tileOutW
				phaseForW(phFFTForward, workers, n*c, func(wk, i int) {
					nn, cc := i/c, i%c
					scr := pl.scratchFor(scrBlock, wk)
					pl.fwdInto(xspec[i*pf:(i+1)*pf], fftTile, fftTile, func(r, s int) float32 {
						ih := baseH + r - p.PadH
						iw := baseW + s - p.PadW
						if ih < 0 || ih >= in.H || iw < 0 || iw >= in.W {
							return 0
						}
						return x.At(nn, cc, ih, iw)
					}, scr)
				})
				parallelForW(workers, n*k, func(wk, i int) {
					nn, kk := i/k, i%k
					acc := yspec[i*pf : (i+1)*pf]
					t := prof.Enter()
					zeroPlane(acc)
					for cc := 0; cc < c; cc++ {
						accumMulConj(acc, xspec[(nn*c+cc)*pf:(nn*c+cc+1)*pf], wspec[(kk*c+cc)*pf:(kk*c+cc+1)*pf])
					}
					t = prof.Next(phFFTPointwise, t)
					scr := pl.scratchFor(scrBlock, wk)
					pl.invFrom(acc, scr)
					for dh := 0; dh < tileOutH && baseH+dh < out.H; dh++ {
						for dw := 0; dw < tileOutW && baseW+dw < out.W; dw++ {
							blend(&y.Data[y.Index(nn, kk, baseH+dh, baseW+dw)], float32(real(scr[dh*pl.q+dw])), alpha, beta)
						}
					}
					prof.Exit(phFFTInverse, t)
				})
			}
		}
	case BackwardData:
		// Same structure on the rotated filter and padded dY, tiled over dX.
		padB, padBW := f.R-1-p.PadH, f.S-1-p.PadW
		tileOutH, tileOutW := fftTile-f.R+1, fftTile-f.S+1
		tilesH, tilesW := ceilDiv(in.H, tileOutH), ceilDiv(in.W, tileOutW)
		phaseForW(phFFTForward, workers, c*k, func(wk, i int) {
			cc, kk := i/k, i%k
			scr := pl.scratchFor(scrBlock, wk)
			pl.fwdInto(wspec[i*pf:(i+1)*pf], f.R, f.S, func(r, s int) float32 {
				return w.At(kk, cc, f.R-1-r, f.S-1-s)
			}, scr)
		})
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				baseH, baseW := th*tileOutH, tw*tileOutW
				phaseForW(phFFTForward, workers, n*k, func(wk, i int) {
					nn, kk := i/k, i%k
					scr := pl.scratchFor(scrBlock, wk)
					pl.fwdInto(yspec[i*pf:(i+1)*pf], fftTile, fftTile, func(r, s int) float32 {
						oh := baseH + r - padB
						ow := baseW + s - padBW
						if oh < 0 || oh >= out.H || ow < 0 || ow >= out.W {
							return 0
						}
						return y.At(nn, kk, oh, ow)
					}, scr)
				})
				parallelForW(workers, n*c, func(wk, i int) {
					nn, cc := i/c, i%c
					acc := xspec[i*pf : (i+1)*pf]
					t := prof.Enter()
					zeroPlane(acc)
					for kk := 0; kk < k; kk++ {
						accumMulConj(acc, yspec[(nn*k+kk)*pf:(nn*k+kk+1)*pf], wspec[(cc*k+kk)*pf:(cc*k+kk+1)*pf])
					}
					t = prof.Next(phFFTPointwise, t)
					scr := pl.scratchFor(scrBlock, wk)
					pl.invFrom(acc, scr)
					for dh := 0; dh < tileOutH && baseH+dh < in.H; dh++ {
						for dw := 0; dw < tileOutW && baseW+dw < in.W; dw++ {
							blend(&x.Data[x.Index(nn, cc, baseH+dh, baseW+dw)], float32(real(scr[dh*pl.q+dw])), alpha, beta)
						}
					}
					prof.Exit(phFFTInverse, t)
				})
			}
		}
	case BackwardFilter:
		// Tile the summation domain: each tile contributes a partial
		// correlation of the padded input patch with the dY patch;
		// contributions accumulate in spectral space in wspec.
		tileH, tileW := fftTile-f.R+1, fftTile-f.S+1
		tilesH, tilesW := ceilDiv(out.H, tileH), ceilDiv(out.W, tileW)
		phaseForW(phFFTPointwise, workers, k*c, func(_, i int) { zeroPlane(wspec[i*pf : (i+1)*pf]) })
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				baseH, baseW := th*tileH, tw*tileW
				phaseForW(phFFTForward, workers, n*c, func(wk, i int) {
					nn, cc := i/c, i%c
					scr := pl.scratchFor(scrBlock, wk)
					pl.fwdInto(xspec[i*pf:(i+1)*pf], fftTile, fftTile, func(r, s int) float32 {
						ih := baseH + r - p.PadH
						iw := baseW + s - p.PadW
						if ih < 0 || ih >= in.H || iw < 0 || iw >= in.W {
							return 0
						}
						return x.At(nn, cc, ih, iw)
					}, scr)
				})
				phaseForW(phFFTForward, workers, n*k, func(wk, i int) {
					nn, kk := i/k, i%k
					scr := pl.scratchFor(scrBlock, wk)
					pl.fwdInto(yspec[i*pf:(i+1)*pf], tileH, tileW, func(r, s int) float32 {
						oh, ow := baseH+r, baseW+s
						if oh >= out.H || ow >= out.W {
							return 0
						}
						return y.At(nn, kk, oh, ow)
					}, scr)
				})
				phaseForW(phFFTPointwise, workers, k*c, func(_, i int) {
					kk, cc := i/c, i%c
					acc := wspec[i*pf : (i+1)*pf]
					for nn := 0; nn < n; nn++ {
						accumMulConj(acc, xspec[(nn*c+cc)*pf:(nn*c+cc+1)*pf], yspec[(nn*k+kk)*pf:(nn*k+kk+1)*pf])
					}
				})
			}
		}
		phaseForW(phFFTInverse, workers, k*c, func(wk, i int) {
			kk, cc := i/c, i%c
			scr := pl.scratchFor(scrBlock, wk)
			pl.invFrom(wspec[i*pf:(i+1)*pf], scr)
			for r := 0; r < f.R; r++ {
				for s := 0; s < f.S; s++ {
					blend(&w.Data[w.Index(kk, cc, r, s)], float32(real(scr[r*pl.q+s])), alpha, beta)
				}
			}
		})
	}
}
