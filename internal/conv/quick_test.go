package conv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ucudnn/internal/tensor"
)

// Property: convolution is linear in the filter — conv(x, a*w) equals
// a*conv(x, w) — for every algorithm.
func TestLinearityInFilter(t *testing.T) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 2, C: 3, H: 8, W: 8},
		Filt:   tensor.Filter{K: 4, C: 3, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	for _, algo := range AlgosFor(Forward) {
		if !Supported(Forward, algo, cs) {
			continue
		}
		x, w, _ := randomProblem(cs, 31)
		ws := wsFor(t, Forward, algo, cs)
		y1 := tensor.NewShaped(cs.OutShape())
		if err := Run(Forward, algo, cs, x, w, y1, 1, 0, ws); err != nil {
			t.Fatal(err)
		}
		const a = 2.5
		w2 := w.Clone()
		for i := range w2.Data {
			w2.Data[i] *= a
		}
		y2 := tensor.NewShaped(cs.OutShape())
		if err := Run(Forward, algo, cs, x, w2, y2, 1, 0, ws); err != nil {
			t.Fatal(err)
		}
		for i := range y1.Data {
			y1.Data[i] *= a
		}
		if !tensor.AllClose(y1.Data, y2.Data, 10*tolFor(algo, cs), 1e-3) {
			t.Errorf("%v: not linear in filter: maxdiff %g", algo, tensor.MaxAbsDiff(y1.Data, y2.Data))
		}
	}
}

// Property: conv(x1 + x2, w) == conv(x1, w) + conv(x2, w).
func TestAdditivityInInput(t *testing.T) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 2, C: 2, H: 9, W: 9},
		Filt:   tensor.Filter{K: 3, C: 2, R: 5, S: 5},
		Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1},
	}
	for _, algo := range []Algo{AlgoGemm, AlgoFFT, AlgoWinogradNonfused} {
		if !Supported(Forward, algo, cs) {
			continue
		}
		rng := rand.New(rand.NewSource(33))
		x1 := tensor.NewShaped(cs.In)
		x1.Randomize(rng, 1)
		x2 := tensor.NewShaped(cs.In)
		x2.Randomize(rng, 1)
		w := tensor.NewFilter(3, 2, 5, 5)
		w.Randomize(rng, 1)
		ws := wsFor(t, Forward, algo, cs)
		yA := tensor.NewShaped(cs.OutShape())
		Run(Forward, algo, cs, x1, w, yA, 1, 0, ws)
		yB := tensor.NewShaped(cs.OutShape())
		Run(Forward, algo, cs, x2, w, yB, 1, 0, ws)
		xs := x1.Clone()
		for i := range xs.Data {
			xs.Data[i] += x2.Data[i]
		}
		yS := tensor.NewShaped(cs.OutShape())
		Run(Forward, algo, cs, xs, w, yS, 1, 0, ws)
		for i := range yA.Data {
			yA.Data[i] += yB.Data[i]
		}
		if !tensor.AllClose(yA.Data, yS.Data, 10*tolFor(algo, cs), 1e-3) {
			t.Errorf("%v: not additive: maxdiff %g", algo, tensor.MaxAbsDiff(yA.Data, yS.Data))
		}
	}
}

// Property: workspace sizes are deterministic, nonnegative, and
// monotonically nondecreasing in batch for batch-dependent algorithms.
func TestWorkspaceQuick(t *testing.T) {
	f := func(n8, c8, k8, h8 uint8, seed int64) bool {
		n := int(n8%8) + 1
		c := int(c8%8) + 1
		k := int(k8%8) + 1
		h := int(h8%12) + 5
		cs := tensor.ConvShape{
			In:     tensor.Shape{N: n, C: c, H: h, W: h},
			Filt:   tensor.Filter{K: k, C: c, R: 3, S: 3},
			Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
		}
		for _, op := range Ops {
			for _, algo := range AlgosFor(op) {
				w1, ok1 := Workspace(op, algo, cs)
				w2, ok2 := Workspace(op, algo, cs)
				if ok1 != ok2 || w1 != w2 {
					return false // non-deterministic
				}
				if !ok1 {
					continue
				}
				if w1 < 0 {
					return false
				}
				big, okBig := Workspace(op, algo, cs.WithN(n+4))
				if okBig && big < w1 {
					return false // workspace shrank with batch
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: micro-batch equivalence holds for random shapes and random
// split points (the §II loop-splitting argument, fuzzed).
func TestMicroBatchQuick(t *testing.T) {
	f := func(seed int64, splitAt uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		cs := tensor.ConvShape{
			In:     tensor.Shape{N: n, C: 2 + rng.Intn(3), H: 6 + rng.Intn(5), W: 6 + rng.Intn(5)},
			Filt:   tensor.Filter{K: 1 + rng.Intn(4), C: 0, R: 3, S: 3},
			Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
		}
		cs.Filt.C = cs.In.C
		split := 1 + int(splitAt)%(n-1)
		algos := []Algo{AlgoGemm, AlgoImplicitGemm, AlgoFFT}
		algo := algos[rng.Intn(len(algos))]
		if !Supported(Forward, algo, cs) {
			return true
		}
		x, w, _ := randomProblem(cs, seed)
		ws := make([]float32, 1<<22)
		yu := tensor.NewShaped(cs.OutShape())
		if err := Run(Forward, algo, cs, x, w, yu, 1, 0, ws); err != nil {
			return false
		}
		ys := tensor.NewShaped(cs.OutShape())
		c1 := cs.WithN(split)
		c2 := cs.WithN(n - split)
		if err := Run(Forward, algo, c1, x.Sample(0, split), w, ys.Sample(0, split), 1, 0, ws); err != nil {
			return false
		}
		if err := Run(Forward, algo, c2, x.Sample(split, n-split), w, ys.Sample(split, n-split), 1, 0, ws); err != nil {
			return false
		}
		return tensor.AllClose(yu.Data, ys.Data, tolFor(algo, cs), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FFT and FFT_TILING must agree with each other on shapes where both are
// supported (they share no code path beyond the spectral helpers).
func TestFFTVariantsAgree(t *testing.T) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 2, C: 3, H: 40, W: 40},
		Filt:   tensor.Filter{K: 4, C: 3, R: 5, S: 5},
		Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1},
	}
	for _, op := range Ops {
		if !Supported(op, AlgoFFT, cs) || !Supported(op, AlgoFFTTiling, cs) {
			continue
		}
		x, w, y := randomProblem(cs, 35)
		x2, w2, y2 := x.Clone(), w.Clone(), y.Clone()
		wsA := wsFor(t, op, AlgoFFT, cs)
		wsB := wsFor(t, op, AlgoFFTTiling, cs)
		if err := Run(op, AlgoFFT, cs, x, w, y, 1, 0, wsA); err != nil {
			t.Fatal(err)
		}
		if err := Run(op, AlgoFFTTiling, cs, x2, w2, y2, 1, 0, wsB); err != nil {
			t.Fatal(err)
		}
		var a, b []float32
		switch op {
		case Forward:
			a, b = y.Data, y2.Data
		case BackwardData:
			a, b = x.Data, x2.Data
		case BackwardFilter:
			a, b = w.Data, w2.Data
		}
		if !tensor.AllClose(a, b, 2*tolFor(AlgoFFT, cs), 1e-3) {
			t.Errorf("%v: FFT vs FFT_TILING diverge: %g", op, tensor.MaxAbsDiff(a, b))
		}
	}
}
