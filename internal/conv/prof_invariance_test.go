package conv

// The profiler's engine contract: enabling phase profiling changes no
// arithmetic. Every hook either reads a clock or bumps an atomic — it
// never reorders the striped loops — so outputs are bit-identical with
// profiling on and off, serial and striped.

import (
	"math"
	"testing"

	"ucudnn/internal/prof"
)

func TestProfilingBitwiseInvariance(t *testing.T) {
	prof.Reset()
	t.Cleanup(func() {
		prof.Disable()
		prof.Reset()
	})
	for _, p := range []int{1, 4} {
		withWorkers(p, func() {
			for _, op := range Ops {
				for _, algo := range AlgosFor(op) {
					for si, cs := range testShapes {
						if !Supported(op, algo, cs) {
							continue
						}
						var ref []float32
						for _, profiling := range []bool{false, true} {
							if profiling {
								prof.Enable()
							} else {
								prof.Disable()
							}
							x, w, y := randomProblem(cs, int64(si+77))
							ws := wsFor(t, op, algo, cs)
							if err := Run(op, algo, cs, x, w, y, 0.75, 0.25, ws); err != nil {
								t.Fatalf("P=%d %v/%v shape %d (profiling=%v): %v", p, op, algo, si, profiling, err)
							}
							got := resultOf(op, x, w, y)
							if ref == nil {
								ref = append([]float32(nil), got...)
								continue
							}
							for i := range got {
								if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
									t.Fatalf("P=%d %v/%v shape %d: profiling changes elem %d (%x vs %x)",
										p, op, algo, si, i, math.Float32bits(got[i]), math.Float32bits(ref[i]))
								}
							}
						}
						prof.Disable()
					}
				}
			}
		})
	}
	// The profiled runs above must actually have recorded phase windows —
	// otherwise this test would pass vacuously with dead hooks.
	rows := prof.Snapshot()
	var attributed int64
	for _, r := range rows {
		attributed += r.AttributedNS
	}
	if attributed <= 0 {
		t.Fatalf("profiled runs recorded no phase time: %+v", rows)
	}
}
