package conv

import (
	"ucudnn/internal/blas"
	"ucudnn/internal/tensor"
)

// gemmWorkspace returns the scratch bytes for the explicit-GEMM algorithm:
// one per-sample im2col lowering buffer of (C*R*S) x (OH*OW) float32
// elements, reused across the batch loop. The footprint is therefore
// independent of the (micro-)batch size, as with cuDNN's GEMM algorithm.
func gemmWorkspace(op Op, cs tensor.ConvShape) int64 {
	out := cs.OutShape()
	cols := int64(cs.Filt.C) * int64(cs.Filt.R) * int64(cs.Filt.S)
	return cols * int64(out.H) * int64(out.W) * 4
}

// im2col lowers sample xn (C x H x W, sample-local) into col, a
// (C*R*S) x (OH*OW) row-major matrix, zero-filling padded positions.
func im2col(cs tensor.ConvShape, xn []float32, col []float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	pixels := out.H * out.W
	row := 0
	for c := 0; c < f.C; c++ {
		plane := xn[c*in.H*in.W : (c+1)*in.H*in.W]
		for r := 0; r < f.R; r++ {
			for s := 0; s < f.S; s++ {
				dst := col[row*pixels : (row+1)*pixels]
				row++
				i := 0
				for oh := 0; oh < out.H; oh++ {
					ih := oh*p.StrideH - p.PadH + r*p.DilationH
					if ih < 0 || ih >= in.H {
						for ow := 0; ow < out.W; ow++ {
							dst[i] = 0
							i++
						}
						continue
					}
					src := plane[ih*in.W : (ih+1)*in.W]
					for ow := 0; ow < out.W; ow++ {
						iw := ow*p.StrideW - p.PadW + s*p.DilationW
						if iw < 0 || iw >= in.W {
							dst[i] = 0
						} else {
							dst[i] = src[iw]
						}
						i++
					}
				}
			}
		}
	}
}

// col2im scatters col (the gradient of the im2col lowering) back into
// sample xn, accumulating alpha*col on top of the existing contents.
func col2im(cs tensor.ConvShape, col []float32, xn []float32, alpha float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	pixels := out.H * out.W
	row := 0
	for c := 0; c < f.C; c++ {
		plane := xn[c*in.H*in.W : (c+1)*in.H*in.W]
		for r := 0; r < f.R; r++ {
			for s := 0; s < f.S; s++ {
				src := col[row*pixels : (row+1)*pixels]
				row++
				i := 0
				for oh := 0; oh < out.H; oh++ {
					ih := oh*p.StrideH - p.PadH + r*p.DilationH
					if ih < 0 || ih >= in.H {
						i += out.W
						continue
					}
					dstRow := plane[ih*in.W : (ih+1)*in.W]
					for ow := 0; ow < out.W; ow++ {
						iw := ow*p.StrideW - p.PadW + s*p.DilationW
						if iw >= 0 && iw < in.W {
							dstRow[iw] += alpha * src[i]
						}
						i++
					}
				}
			}
		}
	}
}

// runGemm executes the explicit im2col + SGEMM algorithm.
func runGemm(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) {
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	crs := f.C * f.R * f.S
	pixels := out.H * out.W
	col := ws[:crs*pixels]
	inPlane := in.C * in.H * in.W
	outPlane := out.C * out.H * out.W

	switch op {
	case Forward:
		// Y[n] (K x pixels) = alpha * Wmat (K x CRS) * col + beta * Y[n].
		for n := 0; n < in.N; n++ {
			im2col(cs, x.Data[n*inPlane:(n+1)*inPlane], col)
			blas.Sgemm(false, false, f.K, pixels, crs,
				alpha, w.Data, crs, col, pixels, beta,
				y.Data[n*outPlane:(n+1)*outPlane], pixels)
		}
	case BackwardData:
		// colGrad = Wmatᵀ (CRS x K) * dY[n] (K x pixels); scatter via col2im.
		for n := 0; n < in.N; n++ {
			blas.Sgemm(true, false, crs, pixels, f.K,
				1, w.Data, crs, y.Data[n*outPlane:(n+1)*outPlane], pixels, 0,
				col, pixels)
			dx := x.Data[n*inPlane : (n+1)*inPlane]
			if beta == 0 {
				for i := range dx {
					dx[i] = 0
				}
			} else if beta != 1 {
				for i := range dx {
					dx[i] *= beta
				}
			}
			col2im(cs, col, dx, alpha)
		}
	case BackwardFilter:
		// dW (K x CRS) = beta*dW + alpha * sum_n dY[n] (K x pixels) * colᵀ.
		if beta == 0 {
			w.Zero()
		} else if beta != 1 {
			for i := range w.Data {
				w.Data[i] *= beta
			}
		}
		for n := 0; n < in.N; n++ {
			im2col(cs, x.Data[n*inPlane:(n+1)*inPlane], col)
			blas.Sgemm(false, true, f.K, crs, pixels,
				alpha, y.Data[n*outPlane:(n+1)*outPlane], pixels, col, pixels, 1,
				w.Data, crs)
		}
	}
}
