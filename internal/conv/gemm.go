package conv

import (
	"ucudnn/internal/blas"
	"ucudnn/internal/flight"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
)

// gemmStripFloats returns the float32 elements of one worker's workspace
// strip: the per-sample im2col lowering buffer of (C*R*S) x (OH*OW), plus
// for BackwardFilter a per-sample partial dW buffer of K x (C*R*S) that
// the deterministic reduction consumes.
//
//ucudnn:hotpath
func gemmStripFloats(op Op, cs tensor.ConvShape) int {
	out := cs.OutShape()
	crs := cs.Filt.C * cs.Filt.R * cs.Filt.S
	strip := crs * out.H * out.W
	if op == BackwardFilter {
		strip += cs.Filt.K * crs
	}
	return strip
}

// gemmPackFloats returns the float32 elements of the packed weight
// region at the front of the workspace. Forward and BackwardData
// multiply the same weight matrix against every sample, so the weights
// are packed into SGEMM panel layout once per Run and reused across the
// whole batch; BackwardFilter's A operand is the per-sample dY, so it
// has no shared pack.
//
//ucudnn:hotpath
func gemmPackFloats(op Op, cs tensor.ConvShape) int {
	crs := cs.Filt.C * cs.Filt.R * cs.Filt.S
	switch op {
	case Forward:
		return blas.PackAFloats(cs.Filt.K, crs)
	case BackwardData:
		return blas.PackAFloats(crs, cs.Filt.K)
	}
	return 0
}

// gemmWorkspace returns the scratch bytes for the explicit-GEMM
// algorithm: the shared packed-weight region plus one workspace strip
// per engine worker (min(MaxWorkers, N)), so the batch can be striped
// across workers with each worker owning a disjoint lowering buffer.
// With minimal set, it returns the single-strip floor at which runGemm
// degrades to the serial batch walk.
func gemmWorkspace(op Op, cs tensor.ConvShape, minimal bool) int64 {
	strip := int64(gemmStripFloats(op, cs))
	pack := int64(gemmPackFloats(op, cs))
	if minimal {
		return (pack + strip) * 4
	}
	return (pack + int64(batchStripes(cs.In.N))*strip) * 4
}

// im2col lowers sample xn (C x H x W, sample-local) into col, a
// (C*R*S) x (OH*OW) row-major matrix, zero-filling padded positions.
//
//ucudnn:hotpath
func im2col(cs tensor.ConvShape, xn []float32, col []float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	pixels := out.H * out.W
	row := 0
	for c := 0; c < f.C; c++ {
		plane := xn[c*in.H*in.W : (c+1)*in.H*in.W]
		for r := 0; r < f.R; r++ {
			for s := 0; s < f.S; s++ {
				dst := col[row*pixels : (row+1)*pixels]
				row++
				i := 0
				for oh := 0; oh < out.H; oh++ {
					ih := oh*p.StrideH - p.PadH + r*p.DilationH
					if ih < 0 || ih >= in.H {
						for ow := 0; ow < out.W; ow++ {
							dst[i] = 0
							i++
						}
						continue
					}
					src := plane[ih*in.W : (ih+1)*in.W]
					for ow := 0; ow < out.W; ow++ {
						iw := ow*p.StrideW - p.PadW + s*p.DilationW
						if iw < 0 || iw >= in.W {
							dst[i] = 0
						} else {
							dst[i] = src[iw]
						}
						i++
					}
				}
			}
		}
	}
}

// col2im scatters col (the gradient of the im2col lowering) back into
// sample xn, accumulating alpha*col on top of the existing contents.
//
//ucudnn:hotpath
func col2im(cs tensor.ConvShape, col []float32, xn []float32, alpha float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	pixels := out.H * out.W
	row := 0
	for c := 0; c < f.C; c++ {
		plane := xn[c*in.H*in.W : (c+1)*in.H*in.W]
		for r := 0; r < f.R; r++ {
			for s := 0; s < f.S; s++ {
				src := col[row*pixels : (row+1)*pixels]
				row++
				i := 0
				for oh := 0; oh < out.H; oh++ {
					ih := oh*p.StrideH - p.PadH + r*p.DilationH
					if ih < 0 || ih >= in.H {
						i += out.W
						continue
					}
					dstRow := plane[ih*in.W : (ih+1)*in.W]
					for ow := 0; ow < out.W; ow++ {
						iw := ow*p.StrideW - p.PadW + s*p.DilationW
						if iw >= 0 && iw < in.W {
							dstRow[iw] += alpha * src[i]
						}
						i++
					}
				}
			}
		}
	}
}

// gemmCtx carries the explicit-GEMM kernel state. Methods use a value
// receiver so the serial path runs as plain calls with no closures — the
// property behind the engine's zero-allocation steady state.
type gemmCtx struct {
	cs          tensor.ConvShape
	x           *tensor.Tensor
	w           *tensor.FilterTensor
	y           *tensor.Tensor
	alpha, beta float32
	ws          []float32 // per-worker strips (packW already carved off)
	packW       []float32 // weights in SGEMM panel layout, shared read-only
	strip       int       // floats per worker strip
	crs, pixels int
	inPlane     int
	outPlane    int
	k           int
}

// colFor returns worker wk's im2col buffer.
//
//ucudnn:hotpath
func (g gemmCtx) colFor(wk int) []float32 {
	return g.ws[wk*g.strip : wk*g.strip+g.crs*g.pixels]
}

// partFor returns worker wk's partial-dW buffer (BackwardFilter strips
// only).
//
//ucudnn:hotpath
func (g gemmCtx) partFor(wk int) []float32 {
	off := wk*g.strip + g.crs*g.pixels
	return g.ws[off : off+g.k*g.crs]
}

// forwardSample computes Y[n] = alpha * Wmat * im2col(X[n]) + beta*Y[n]
// in worker wk's strip, reusing the per-Run weight pack (alpha fused).
// sgemmWorkers caps the inner GEMM's parallelism. The SGEMM records its
// own pack/kernel phases.
//
//ucudnn:hotpath
func (g gemmCtx) forwardSample(wk, n, sgemmWorkers int) {
	col := g.colFor(wk)
	t := prof.Enter()
	im2col(g.cs, g.x.Data[n*g.inPlane:(n+1)*g.inPlane], col)
	prof.Exit(phGemmIm2col, t)
	blas.SgemmPackedA(sgemmWorkers, g.packW, false, g.k, g.pixels, g.crs,
		col, g.pixels, g.beta,
		g.y.Data[n*g.outPlane:(n+1)*g.outPlane], g.pixels)
}

// backwardDataSample computes dX[n] from dY[n] in worker wk's strip,
// reusing the per-Run Wᵀ pack (alpha applied in the col2im scatter).
//
//ucudnn:hotpath
func (g gemmCtx) backwardDataSample(wk, n, sgemmWorkers int) {
	col := g.colFor(wk)
	blas.SgemmPackedA(sgemmWorkers, g.packW, false, g.crs, g.pixels, g.k,
		g.y.Data[n*g.outPlane:(n+1)*g.outPlane], g.pixels, 0,
		col, g.pixels)
	t := prof.Enter()
	dx := g.x.Data[n*g.inPlane : (n+1)*g.inPlane]
	if g.beta == 0 {
		for i := range dx {
			dx[i] = 0
		}
	} else if g.beta != 1 {
		for i := range dx {
			dx[i] *= g.beta
		}
	}
	col2im(g.cs, col, dx, g.alpha)
	prof.Exit(phGemmIm2col, t)
}

// filterPartial computes strip wk's raw per-sample filter-gradient
// contribution: part = dY[n] * im2col(X[n])ᵀ, unscaled, beta=0. The A
// operand is the per-sample dY, so there is no shared pack here.
//
//ucudnn:hotpath
func (g gemmCtx) filterPartial(wk, n, sgemmWorkers int) {
	col := g.colFor(wk)
	t := prof.Enter()
	im2col(g.cs, g.x.Data[n*g.inPlane:(n+1)*g.inPlane], col)
	prof.Exit(phGemmIm2col, t)
	blas.SgemmWorkers(sgemmWorkers, false, true, g.k, g.crs, g.pixels,
		1, g.y.Data[n*g.outPlane:(n+1)*g.outPlane], g.pixels, col, g.pixels, 0,
		g.partFor(wk), g.crs)
}

// runGemm executes the explicit im2col + SGEMM algorithm, striping the
// batch across as many workspace strips as the granted workspace holds
// (at most one per engine worker). With a single strip, the batch is
// walked serially and the inner SGEMM re-parallelized instead.
func runGemm(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) {
	out := cs.OutShape()
	in := cs.In
	f := cs.Filt
	pack := gemmPackFloats(op, cs)
	g := gemmCtx{
		cs: cs, x: x, w: w, y: y, alpha: alpha, beta: beta,
		packW: ws[:pack], ws: ws[pack:],
		strip:   gemmStripFloats(op, cs),
		crs:     f.C * f.R * f.S,
		pixels:  out.H * out.W,
		inPlane: in.C * in.H * in.W, outPlane: out.C * out.H * out.W,
		k: f.K,
	}
	// Pack the weights once per Run: Forward multiplies Wmat (alpha
	// fused into the pack), BackwardData multiplies Wmatᵀ (alpha stays
	// out, applied in the col2im scatter).
	switch op {
	case Forward:
		blas.PackA(g.packW, false, g.k, g.crs, alpha, w.Data, g.crs)
	case BackwardData:
		blas.PackA(g.packW, true, g.crs, g.k, 1, w.Data, g.crs)
	}
	workers := fitStripes(batchStripes(in.N), len(g.ws), g.strip)
	flight.Rec(evStripe, int64(op), int64(workers), int64(g.strip), int64(len(ws)))

	switch op {
	case Forward:
		// Y[n] (K x pixels) = alpha * Wmat (K x CRS) * col + beta * Y[n].
		if workers <= 1 {
			for n := 0; n < in.N; n++ {
				g.forwardSample(0, n, 0)
			}
			return
		}
		// Copy g so only the copy is captured (and heap-allocated) by the
		// escaping closure; the serial path above keeps g on the stack.
		gc := g
		parallelForW(workers, in.N, func(wk, n int) { gc.forwardSample(wk, n, 1) })
	case BackwardData:
		// colGrad = Wmatᵀ (CRS x K) * dY[n] (K x pixels); scatter via col2im.
		if workers <= 1 {
			for n := 0; n < in.N; n++ {
				g.backwardDataSample(0, n, 0)
			}
			return
		}
		gc := g
		parallelForW(workers, in.N, func(wk, n int) { gc.backwardDataSample(wk, n, 1) })
	case BackwardFilter:
		// dW = beta*dW + alpha * sum_n dY[n] * colᵀ. Per-sample partial
		// buffers are computed in parallel rounds of `workers` samples and
		// reduced serially in ascending n order, so every dW element sees
		// the per-sample contributions added one at a time in batch order —
		// bit-identical at every worker count, and equal bit for bit to a
		// micro-batched beta=1 accumulation over the same samples (§II).
		if beta == 0 {
			w.Zero()
		} else if beta != 1 {
			for i := range w.Data {
				w.Data[i] *= beta
			}
		}
		if workers <= 1 {
			for n := 0; n < in.N; n++ {
				g.filterPartial(0, n, 0)
				t := prof.Enter()
				blas.Saxpy(alpha, g.partFor(0), w.Data)
				prof.Exit(phGemmReduce, t)
			}
			return
		}
		gc := g
		for n0 := 0; n0 < in.N; n0 += workers {
			cnt := imin(workers, in.N-n0)
			base := n0
			parallelForW(cnt, cnt, func(wk, i int) { gc.filterPartial(wk, base+i, 1) })
			t := prof.Enter()
			for i := 0; i < cnt; i++ {
				blas.Saxpy(alpha, gc.partFor(i), w.Data)
			}
			prof.Exit(phGemmReduce, t)
		}
	}
}
