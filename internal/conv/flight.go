package conv

import (
	"strconv"

	"ucudnn/internal/flight"
)

// EvStripe is the flight-recorder event for the engine's workspace
// stripe fit (one per GEMM kernel run): a=op, b=strips actually run
// (1 = serial single-strip path), c=floats per strip, d=granted
// workspace floats.
const EvStripe flight.Name = "ucudnn_ev_stripe"

var evStripe = flight.Register(EvStripe, fmtStripe)

func fmtStripe(a, b, c, d int64) string {
	return "op=" + Op(a).String() + " strips=" + strconv.FormatInt(b, 10) +
		" strip_floats=" + strconv.FormatInt(c, 10) + " ws_floats=" + strconv.FormatInt(d, 10)
}
