package conv

import (
	"fmt"
	"sync"

	"ucudnn/internal/blas"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
	"ucudnn/internal/winograd"
)

// fusedBlockTiles bounds how many tiles the fused Winograd variant keeps
// in flight; its workspace is independent of the spatial extent and batch.
const fusedBlockTiles = 64

var (
	wtMu    sync.Mutex
	wtCache = map[[2]int]*winograd.Transform{}
)

// winogradLargeTileMin is the smallest tiled extent at which the
// non-fused 3x3 path steps up from F(4x4,3x3) to F(6x6,3x3): two full
// 6-wide tiles per dimension, so the halo and tail waste of the larger
// tile is amortized. Below it F(4,3) wastes less work and carries less
// FP32 transform error.
const winogradLargeTileMin = 12

// winogradM returns the Winograd output-tile size m for op on cs — a
// pure function of the shape, so every worker count and workspace grant
// (and the device cost model, which mirrors this rule) agrees on the
// transform. Fused is always F(2x2,3x3); non-fused 5x5 is F(2x2,5x5);
// non-fused 3x3 picks F(6x6,3x3) on large output planes and F(4x4,3x3)
// otherwise.
func winogradM(op Op, cs tensor.ConvShape, fused bool) int {
	r := cs.Filt.R
	switch {
	case fused && r == 3:
		return 2
	case !fused && r == 5:
		return 2
	case !fused && r == 3:
		// The tiled extents: dX for BackwardData (the transformed
		// problem's output), the forward output otherwise.
		rows, cols := cs.OutShape().H, cs.OutShape().W
		if op == BackwardData {
			rows, cols = cs.In.H, cs.In.W
		}
		if rows >= winogradLargeTileMin && cols >= winogradLargeTileMin {
			return 6
		}
		return 4
	}
	panic(fmt.Sprintf("conv: no winograd transform for fused=%v r=%d", fused, r))
}

// winogradTransformFor returns the cached transform for op on cs:
// fused uses F(2x2,3x3); non-fused picks F(4x4,3x3) or F(6x6,3x3) by
// output extent (see winogradM) and supports 5x5 kernels via
// F(2x2,5x5), mirroring cuDNN.
func winogradTransformFor(op Op, cs tensor.ConvShape, fused bool) *winograd.Transform {
	m, r := winogradM(op, cs, fused), cs.Filt.R
	key := [2]int{m, r}
	wtMu.Lock()
	defer wtMu.Unlock()
	if tr, ok := wtCache[key]; ok {
		return tr
	}
	tr, err := winograd.NewTransform(m, r)
	if err != nil {
		panic(err)
	}
	wtCache[key] = tr
	return tr
}

// winogradTiles returns the number of tiles per image dimension and total
// tile count for tiling a rows x cols output with m x m tiles over batch n.
func winogradTiles(m, rows, cols, n int) (tilesH, tilesW, total int) {
	tilesH = ceilDiv(rows, m)
	tilesW = ceilDiv(cols, m)
	return tilesH, tilesW, n * tilesH * tilesW
}

// winogradArenaFloats is the per-worker scratch arena: three alpha^2
// buffers, enough for the largest (src, dst, tmp) triple of any transform
// phase (every buffer a transform touches is at most alpha x alpha).
func winogradArenaFloats(tr *winograd.Transform) int {
	return 3 * tr.Alpha * tr.Alpha
}

// winogradBaseFloats returns the float32 elements of the shared spectral
// buffers (filter spectra, input-tile spectra, products/accumulators) —
// everything in the workspace except the per-worker arenas.
func winogradBaseFloats(op Op, cs tensor.ConvShape, tr *winograd.Transform, fused bool) int64 {
	a2 := int64(tr.Alpha * tr.Alpha)
	out := cs.OutShape()
	c, k := int64(cs.In.C), int64(cs.Filt.K)
	var total int
	switch op {
	case BackwardFilter:
		_, _, total = winogradTiles(tr.M, out.H, out.W, cs.In.N)
		// Input tiles, output-gradient tiles, and the spectral accumulator.
		return a2 * ((c+k)*int64(total) + k*c)
	case BackwardData:
		_, _, total = winogradTiles(tr.M, cs.In.H, cs.In.W, cs.In.N)
	default:
		_, _, total = winogradTiles(tr.M, out.H, out.W, cs.In.N)
	}
	bp := int64(total)
	if fused && bp > fusedBlockTiles {
		bp = fusedBlockTiles
	}
	return a2 * (k*c + (c+k)*bp)
}

// winogradWorkspace returns the scratch bytes of the (non-)fused Winograd
// algorithm for op on cs: the shared spectral buffers plus one transform
// arena per engine worker (or a single arena with minimal set — the floor
// at which the tile loops run serially).
func winogradWorkspace(op Op, cs tensor.ConvShape, fused, minimal bool) int64 {
	tr := winogradTransformFor(op, cs, fused)
	workers := MaxWorkers()
	if minimal {
		workers = 1
	}
	arenas := int64(workers) * int64(winogradArenaFloats(tr))
	return (winogradBaseFloats(op, cs, tr, fused) + arenas) * 4
}

// winogradWorkers returns how many tile workers the granted workspace
// supports: one per arena that fits after the base (shared spectral
// buffer) floats, capped at the engine's worker limit.
func winogradWorkers(tr *winograd.Transform, base int, ws []float32) int {
	fit := (len(ws) - base) / winogradArenaFloats(tr)
	if fit < 1 {
		fit = 1
	}
	return imin(MaxWorkers(), fit)
}

func runWinograd(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32, fused bool) error {
	tr := winogradTransformFor(op, cs, fused)
	switch op {
	case Forward:
		winogradCorrelate(tr, cs, x, w, y, alpha, beta, ws, fused, false)
	case BackwardData:
		// dX is the correlation of dY (padded by R-1-pad) with the rotated,
		// channel-swapped filter; reuse the forward engine on the
		// transformed problem.
		p := cs.Params.Normalized()
		if p.PadH > cs.Filt.R-1 || p.PadW > cs.Filt.S-1 {
			return fmt.Errorf("conv: winograd BackwardData requires pad < kernel size")
		}
		out := cs.OutShape()
		tcs := tensor.ConvShape{
			In:   tensor.Shape{N: cs.In.N, C: cs.Filt.K, H: out.H, W: out.W},
			Filt: tensor.Filter{K: cs.In.C, C: cs.Filt.K, R: cs.Filt.R, S: cs.Filt.S},
			Params: tensor.ConvParams{
				PadH: cs.Filt.R - 1 - p.PadH, PadW: cs.Filt.S - 1 - p.PadW,
				StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1,
			},
		}
		winogradCorrelate(tr, tcs, y, w, x, alpha, beta, ws, fused, true)
	case BackwardFilter:
		winogradBackwardFilter(tr, cs, x, w, y, alpha, beta, ws)
	}
	return nil
}

// wgCtx carries the Winograd kernel state shared by the tile phases.
// Methods use a value receiver so the serial path runs as plain calls
// with no closures — the property behind the zero-allocation steady
// state; the parallel branches wrap the same methods in closures created
// only when more than one arena is in play.
type wgCtx struct {
	tr          *winograd.Transform
	cs          tensor.ConvShape
	p           tensor.ConvParams
	in, out     tensor.Shape
	x, y        *tensor.Tensor
	w           *tensor.FilterTensor
	alpha, beta float32
	m, alpha2   int
	r, c, k     int
	tilesW      int
	tilesPer    int
	rotSwap     bool

	// Shared spectral buffers (layout differs per op; see the carve sites).
	u, v, mm []float32
	// Per-worker transform arenas, arena stride winogradArenaFloats.
	arena []float32

	// Block-panel geometry (correlate only).
	bp int
}

// bufs returns worker wk's three alpha^2 arena buffers.
//
//ucudnn:hotpath
func (g wgCtx) bufs(wk int) (b0, b1, b2 []float32) {
	a2 := g.alpha2
	base := wk * 3 * a2
	ar := g.arena[base : base+3*a2]
	return ar[:a2], ar[a2 : 2*a2], ar[2*a2 : 3*a2]
}

// filterTile transforms filter pair i = kk*c+cc into the spectral bank:
// U[e][kk*c+cc].
//
//ucudnn:hotpath
func (g wgCtx) filterTile(wk, i int) {
	kk, cc := i/g.c, i%g.c
	b0, b1, b2 := g.bufs(wk)
	r := g.r
	gb := b0[:r*r]
	for a := 0; a < r; a++ {
		for b := 0; b < r; b++ {
			if g.rotSwap {
				// Transformed-problem filter [kk=orig c][cc=orig k].
				gb[a*r+b] = g.w.At(cc, kk, r-1-a, r-1-b)
			} else {
				gb[a*r+b] = g.w.At(kk, cc, a, b)
			}
		}
	}
	ut := b1[:g.alpha2]
	tr := g.tr
	tr.FilterTransform(ut, gb, b2[:tr.Alpha*r])
	kc := g.k * g.c
	for e := 0; e < g.alpha2; e++ {
		g.u[e*kc+i] = ut[e]
	}
}

// inputTile transforms input tile p0+dp of channel cc (task i = cc*cnt+dp)
// into V[e][cc*bp + dp].
//
//ucudnn:hotpath
func (g wgCtx) inputTile(wk, i, p0, cnt int) {
	cc, dp := i/cnt, i%cnt
	pp := p0 + dp
	nn := pp / g.tilesPer
	th := (pp % g.tilesPer) / g.tilesW
	tw := pp % g.tilesW
	baseH := th*g.m - g.p.PadH
	baseW := tw*g.m - g.p.PadW
	b0, b1, b2 := g.bufs(wk)
	d := b0[:g.alpha2]
	for j := range d {
		d[j] = 0
	}
	tr := g.tr
	for a := 0; a < tr.Alpha; a++ {
		ih := baseH + a
		if ih < 0 || ih >= g.in.H {
			continue
		}
		for b := 0; b < tr.Alpha; b++ {
			iw := baseW + b
			if iw < 0 || iw >= g.in.W {
				continue
			}
			d[a*tr.Alpha+b] = g.x.At(nn, cc, ih, iw)
		}
	}
	vt := b1[:g.alpha2]
	tr.InputTransform(vt, d, b2[:g.alpha2])
	cbp := g.c * g.bp
	for e := 0; e < g.alpha2; e++ {
		g.v[e*cbp+cc*g.bp+dp] = vt[e]
	}
}

// spectralGemm multiplies spectral component e of the filter and input
// banks: M[e] (k x cnt) = U[e] (k x c) * V[e] (c x cnt).
//
//ucudnn:hotpath
func (g wgCtx) spectralGemm(e, cnt, sgemmWorkers int) {
	k, c, bp := g.k, g.c, g.bp
	blas.SgemmWorkersQuiet(sgemmWorkers, false, false, k, cnt, c,
		1, g.u[e*k*c:(e+1)*k*c], c, g.v[e*c*bp:e*c*bp+c*bp], bp, 0,
		g.mm[e*k*bp:e*k*bp+k*bp], bp)
}

// outputTile inverse-transforms product tile p0+dp of output channel kk
// (task i = kk*cnt+dp) and blends it into y.
//
//ucudnn:hotpath
func (g wgCtx) outputTile(wk, i, p0, cnt int) {
	kk, dp := i/cnt, i%cnt
	pp := p0 + dp
	nn := pp / g.tilesPer
	th := (pp % g.tilesPer) / g.tilesW
	tw := pp % g.tilesW
	b0, b1, b2 := g.bufs(wk)
	macc := b0[:g.alpha2]
	kbp := g.k * g.bp
	for e := 0; e < g.alpha2; e++ {
		macc[e] = g.mm[e*kbp+kk*g.bp+dp]
	}
	m := g.m
	yt := b1[:m*m]
	tr := g.tr
	tr.OutputTransform(yt, macc, b2[:m*tr.Alpha])
	for a := 0; a < m; a++ {
		oh := th*m + a
		if oh >= g.out.H {
			break
		}
		for b := 0; b < m; b++ {
			ow := tw*m + b
			if ow >= g.out.W {
				break
			}
			blend(&g.y.Data[g.y.Index(nn, kk, oh, ow)], yt[a*m+b], g.alpha, g.beta)
		}
	}
}

// winogradCorrelate computes out = alpha*corr(in, filt) + beta*out with
// the Winograd transform tr; cs describes the correlation being computed
// (for BackwardData, the transformed problem). When rotSwap is set, the
// filter is read rotated 180 degrees with its K/C axes swapped (the raw
// filter tensor retains its original KCRS layout).
func winogradCorrelate(tr *winograd.Transform, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32, fused, rotSwap bool) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	m, alpha2 := tr.M, tr.Alpha*tr.Alpha
	c, k := cs.Filt.C, cs.Filt.K
	tilesH, tilesW, total := winogradTiles(m, out.H, out.W, in.N)
	bp := total
	if fused && bp > fusedBlockTiles {
		bp = fusedBlockTiles
	}

	g := wgCtx{
		tr: tr, cs: cs, p: p, in: in, out: out,
		x: x, y: y, w: w, alpha: alpha, beta: beta,
		m: m, alpha2: alpha2, r: cs.Filt.R, c: c, k: k,
		tilesW: tilesW, tilesPer: tilesH * tilesW, rotSwap: rotSwap,
		bp: bp,
	}
	g.u = ws[:alpha2*k*c]
	g.v = ws[alpha2*k*c : alpha2*(k*c+c*bp)]
	g.mm = ws[alpha2*(k*c+c*bp) : alpha2*(k*c+(c+k)*bp)]
	base := alpha2 * (k*c + (c+k)*bp)
	workers := winogradWorkers(tr, base, ws)
	g.arena = ws[base : base+workers*winogradArenaFloats(tr)]

	if workers <= 1 {
		// Serial path: plain method calls, no closures, so g stays on the
		// stack and steady-state execution allocates nothing. Each stage
		// loop is one phase window (wall time; the inner SGEMM may still
		// fan out — its launch is accounted as nested).
		t := prof.Enter()
		for i := 0; i < k*c; i++ { // filter transforms: U[e][kk*c+cc]
			g.filterTile(0, i)
		}
		prof.Exit(phWinogradTransformIn, t)
		for p0 := 0; p0 < total; p0 += bp {
			cnt := imin(bp, total-p0)
			t = prof.Enter()
			for i := 0; i < c*cnt; i++ { // input tiles: V[e][cc*bp + (p-p0)]
				g.inputTile(0, i, p0, cnt)
			}
			t = prof.Next(phWinogradTransformIn, t)
			for e := 0; e < alpha2; e++ { // M[e] = U[e] * V[e]
				g.spectralGemm(e, cnt, 0)
			}
			t = prof.Next(phWinogradElementwise, t)
			for i := 0; i < k*cnt; i++ { // inverse transforms and scatter
				g.outputTile(0, i, p0, cnt)
			}
			prof.Exit(phWinogradTransformOut, t)
		}
		return
	}
	// Copy g so only the copy is captured (and heap-allocated) by the
	// escaping closures; the serial path above keeps g off the heap.
	gc := g
	phaseForW(phWinogradTransformIn, workers, k*c, func(wk, i int) { gc.filterTile(wk, i) })
	for p0 := 0; p0 < total; p0 += bp {
		cnt := imin(bp, total-p0)
		phaseForW(phWinogradTransformIn, workers, c*cnt, func(wk, i int) { gc.inputTile(wk, i, p0, cnt) })
		phaseForW(phWinogradElementwise, workers, alpha2, func(_, e int) { gc.spectralGemm(e, cnt, 1) })
		phaseForW(phWinogradTransformOut, workers, k*cnt, func(wk, i int) { gc.outputTile(wk, i, p0, cnt) })
	}
}

// inputTileTotal is inputTile with the BackwardFilter bank layout
// V[e][cc*total + pp] (no block panelling).
//
//ucudnn:hotpath
func (g wgCtx) inputTileTotal(wk, i, total int) {
	cc, pp := i/total, i%total
	nn := pp / g.tilesPer
	th := (pp % g.tilesPer) / g.tilesW
	tw := pp % g.tilesW
	baseH := th*g.m - g.p.PadH
	baseW := tw*g.m - g.p.PadW
	b0, b1, b2 := g.bufs(wk)
	d := b0[:g.alpha2]
	for j := range d {
		d[j] = 0
	}
	tr := g.tr
	for a := 0; a < tr.Alpha; a++ {
		ih := baseH + a
		if ih < 0 || ih >= g.in.H {
			continue
		}
		for b := 0; b < tr.Alpha; b++ {
			iw := baseW + b
			if iw < 0 || iw >= g.in.W {
				continue
			}
			d[a*tr.Alpha+b] = g.x.At(nn, cc, ih, iw)
		}
	}
	vt := b1[:g.alpha2]
	tr.InputTransform(vt, d, b2[:g.alpha2])
	for e := 0; e < g.alpha2; e++ {
		g.v[e*g.c*total+cc*total+pp] = vt[e]
	}
}

// outputAdjointTile maps output-gradient tile pp of channel kk (task
// i = kk*total+pp) through the adjoint into Wb[e][kk*total + pp] (the mm
// bank in the BackwardFilter layout).
//
//ucudnn:hotpath
func (g wgCtx) outputAdjointTile(wk, i, total int) {
	kk, pp := i/total, i%total
	nn := pp / g.tilesPer
	th := (pp % g.tilesPer) / g.tilesW
	tw := pp % g.tilesW
	b0, b1, b2 := g.bufs(wk)
	m := g.m
	dy := b0[:m*m]
	for j := range dy {
		dy[j] = 0
	}
	for a := 0; a < m; a++ {
		oh := th*m + a
		if oh >= g.out.H {
			break
		}
		for b := 0; b < m; b++ {
			ow := tw*m + b
			if ow >= g.out.W {
				break
			}
			dy[a*m+b] = g.y.At(nn, kk, oh, ow)
		}
	}
	wt := b1[:g.alpha2]
	tr := g.tr
	tr.OutputAdjoint(wt, dy, b2[:tr.Alpha*m])
	for e := 0; e < g.alpha2; e++ {
		g.mm[e*g.k*total+kk*total+pp] = wt[e]
	}
}

// spectralAdjointGemm accumulates spectral component e of the filter
// gradient: dU[e] (k x c) = Wb[e] (k x total) * V[e]ᵀ.
//
//ucudnn:hotpath
func (g wgCtx) spectralAdjointGemm(e, total, sgemmWorkers int) {
	k, c := g.k, g.c
	blas.SgemmWorkersQuiet(sgemmWorkers, false, true, k, c, total,
		1, g.mm[e*k*total:(e+1)*k*total], total, g.v[e*c*total:(e+1)*c*total], total, 0,
		g.u[e*k*c:(e+1)*k*c], c)
}

// filterAdjointTile maps spectral accumulator pair i = kk*c+cc back to
// filter space and blends it into dW.
//
//ucudnn:hotpath
func (g wgCtx) filterAdjointTile(wk, i int) {
	kk, cc := i/g.c, i%g.c
	b0, b1, b2 := g.bufs(wk)
	uacc := b0[:g.alpha2]
	kc := g.k * g.c
	for e := 0; e < g.alpha2; e++ {
		uacc[e] = g.u[e*kc+i]
	}
	r := g.r
	gb := b1[:r*r]
	tr := g.tr
	tr.FilterAdjoint(gb, uacc, b2[:r*tr.Alpha])
	for a := 0; a < r; a++ {
		for b := 0; b < r; b++ {
			blend(&g.w.Data[g.w.Index(kk, cc, a, b)], gb[a*r+b], g.alpha, g.beta)
		}
	}
}

// winogradBackwardFilter computes dW = alpha*grad + beta*dW using the
// exact adjoint of the Winograd forward tiling (non-fused only).
func winogradBackwardFilter(tr *winograd.Transform, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	m, alpha2 := tr.M, tr.Alpha*tr.Alpha
	c, k := cs.Filt.C, cs.Filt.K
	tilesH, tilesW, total := winogradTiles(m, out.H, out.W, in.N)

	g := wgCtx{
		tr: tr, cs: cs, p: p, in: in, out: out,
		x: x, y: y, w: w, alpha: alpha, beta: beta,
		m: m, alpha2: alpha2, r: cs.Filt.R, c: c, k: k,
		tilesW: tilesW, tilesPer: tilesH * tilesW,
	}
	// Input tiles, output-gradient tiles (mm), and the spectral
	// accumulator (u), then the worker arenas.
	g.v = ws[:alpha2*c*total]
	g.mm = ws[alpha2*c*total : alpha2*(c+k)*total]
	g.u = ws[alpha2*(c+k)*total : alpha2*((c+k)*total+k*c)]
	base := alpha2 * ((c+k)*total + k*c)
	workers := winogradWorkers(tr, base, ws)
	g.arena = ws[base : base+workers*winogradArenaFloats(tr)]

	if workers <= 1 {
		// Serial path: plain method calls keep g on the stack (see
		// winogradCorrelate).
		t := prof.Enter()
		for i := 0; i < c*total; i++ { // input tiles: V[e][cc*total + p]
			g.inputTileTotal(0, i, total)
		}
		for i := 0; i < k*total; i++ { // adjoint dY tiles: Wb[e][kk*total + p]
			g.outputAdjointTile(0, i, total)
		}
		t = prof.Next(phWinogradTransformIn, t)
		for e := 0; e < alpha2; e++ { // dU[e] = Wb[e] * V[e]ᵀ
			g.spectralAdjointGemm(e, total, 0)
		}
		t = prof.Next(phWinogradElementwise, t)
		for i := 0; i < k*c; i++ { // back to filter space
			g.filterAdjointTile(0, i)
		}
		prof.Exit(phWinogradTransformOut, t)
		return
	}
	gc := g
	phaseForW(phWinogradTransformIn, workers, c*total, func(wk, i int) { gc.inputTileTotal(wk, i, total) })
	phaseForW(phWinogradTransformIn, workers, k*total, func(wk, i int) { gc.outputAdjointTile(wk, i, total) })
	phaseForW(phWinogradElementwise, workers, alpha2, func(_, e int) { gc.spectralAdjointGemm(e, total, 1) })
	phaseForW(phWinogradTransformOut, workers, k*c, func(wk, i int) { gc.filterAdjointTile(wk, i) })
}
