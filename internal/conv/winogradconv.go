package conv

import (
	"fmt"
	"sync"

	"ucudnn/internal/blas"
	"ucudnn/internal/tensor"
	"ucudnn/internal/winograd"
)

// fusedBlockTiles bounds how many tiles the fused Winograd variant keeps
// in flight; its workspace is independent of the spatial extent and batch.
const fusedBlockTiles = 64

var (
	wtMu    sync.Mutex
	wtCache = map[[2]int]*winograd.Transform{}
)

// winogradTransformFor returns the cached transform for the variant:
// fused uses F(2x2,3x3); non-fused uses the larger-tile F(4x4,3x3) and
// supports 5x5 kernels via F(2x2,5x5), mirroring cuDNN.
func winogradTransformFor(fused bool, r int) *winograd.Transform {
	var m int
	switch {
	case fused && r == 3:
		m = 2
	case !fused && r == 3:
		m = 4
	case !fused && r == 5:
		m = 2
	default:
		panic(fmt.Sprintf("conv: no winograd transform for fused=%v r=%d", fused, r))
	}
	key := [2]int{m, r}
	wtMu.Lock()
	defer wtMu.Unlock()
	if tr, ok := wtCache[key]; ok {
		return tr
	}
	tr, err := winograd.NewTransform(m, r)
	if err != nil {
		panic(err)
	}
	wtCache[key] = tr
	return tr
}

// winogradTiles returns the number of tiles per image dimension and total
// tile count for tiling a rows x cols output with m x m tiles over batch n.
func winogradTiles(m, rows, cols, n int) (tilesH, tilesW, total int) {
	tilesH = ceilDiv(rows, m)
	tilesW = ceilDiv(cols, m)
	return tilesH, tilesW, n * tilesH * tilesW
}

// winogradWorkspace returns the scratch bytes of the (non-)fused Winograd
// algorithm for op on cs.
func winogradWorkspace(op Op, cs tensor.ConvShape, fused bool) int64 {
	tr := winogradTransformFor(fused, cs.Filt.R)
	a2 := int64(tr.Alpha * tr.Alpha)
	out := cs.OutShape()
	c, k := int64(cs.In.C), int64(cs.Filt.K)
	var total int64
	switch op {
	case Forward:
		_, _, t := winogradTiles(tr.M, out.H, out.W, cs.In.N)
		total = int64(t)
	case BackwardData:
		_, _, t := winogradTiles(tr.M, cs.In.H, cs.In.W, cs.In.N)
		total = int64(t)
	case BackwardFilter:
		_, _, t := winogradTiles(tr.M, out.H, out.W, cs.In.N)
		// Input tiles, output-gradient tiles, and the spectral accumulator.
		return a2 * (c*int64(t) + k*int64(t) + k*c) * 4
	}
	bp := total
	if fused && bp > fusedBlockTiles {
		bp = fusedBlockTiles
	}
	return a2 * (k*c + (c+k)*bp) * 4
}

func runWinograd(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32, fused bool) error {
	tr := winogradTransformFor(fused, cs.Filt.R)
	switch op {
	case Forward:
		winogradCorrelate(tr, cs, x, w, y, alpha, beta, ws, fused, false)
	case BackwardData:
		// dX is the correlation of dY (padded by R-1-pad) with the rotated,
		// channel-swapped filter; reuse the forward engine on the
		// transformed problem.
		p := cs.Params.Normalized()
		if p.PadH > cs.Filt.R-1 || p.PadW > cs.Filt.S-1 {
			return fmt.Errorf("conv: winograd BackwardData requires pad < kernel size")
		}
		out := cs.OutShape()
		tcs := tensor.ConvShape{
			In:   tensor.Shape{N: cs.In.N, C: cs.Filt.K, H: out.H, W: out.W},
			Filt: tensor.Filter{K: cs.In.C, C: cs.Filt.K, R: cs.Filt.R, S: cs.Filt.S},
			Params: tensor.ConvParams{
				PadH: cs.Filt.R - 1 - p.PadH, PadW: cs.Filt.S - 1 - p.PadW,
				StrideH: 1, StrideW: 1, DilationH: 1, DilationW: 1,
			},
		}
		winogradCorrelate(tr, tcs, y, w, x, alpha, beta, ws, fused, true)
	case BackwardFilter:
		winogradBackwardFilter(tr, cs, x, w, y, alpha, beta, ws)
	}
	return nil
}

// winogradCorrelate computes out = alpha*corr(in, filt) + beta*out with
// the Winograd transform tr; cs describes the correlation being computed
// (for BackwardData, the transformed problem). When rotSwap is set, the
// filter is read rotated 180 degrees with its K/C axes swapped (the raw
// filter tensor retains its original KCRS layout).
func winogradCorrelate(tr *winograd.Transform, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32, fused, rotSwap bool) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	m, alpha2 := tr.M, tr.Alpha*tr.Alpha
	r := cs.Filt.R
	c, k := cs.Filt.C, cs.Filt.K
	tilesH, tilesW, total := winogradTiles(m, out.H, out.W, in.N)
	tilesPer := tilesH * tilesW
	bp := total
	if fused && bp > fusedBlockTiles {
		bp = fusedBlockTiles
	}

	u := ws[:alpha2*k*c]
	v := ws[alpha2*k*c : alpha2*(k*c+c*bp)]
	mm := ws[alpha2*(k*c+c*bp) : alpha2*(k*c+(c+k)*bp)]

	// Filter transforms: U[e][kk*c+cc].
	parallelFor(k*c, func(i int) {
		kk, cc := i/c, i%c
		g := make([]float32, r*r)
		for a := 0; a < r; a++ {
			for b := 0; b < r; b++ {
				if rotSwap {
					// Transformed-problem filter [kk=orig c][cc=orig k].
					g[a*r+b] = w.At(cc, kk, r-1-a, r-1-b)
				} else {
					g[a*r+b] = w.At(kk, cc, a, b)
				}
			}
		}
		ut := make([]float32, alpha2)
		tmp := make([]float32, tr.Alpha*r)
		tr.FilterTransform(ut, g, tmp)
		for e := 0; e < alpha2; e++ {
			u[e*k*c+i] = ut[e]
		}
	})

	for p0 := 0; p0 < total; p0 += bp {
		cnt := imin(bp, total-p0)
		// Input tile transforms: V[e][cc*bp + (p-p0)].
		parallelFor(c*cnt, func(i int) {
			cc, dp := i/cnt, i%cnt
			pp := p0 + dp
			nn := pp / tilesPer
			th := (pp % tilesPer) / tilesW
			tw := pp % tilesW
			baseH := th*m - p.PadH
			baseW := tw*m - p.PadW
			d := make([]float32, alpha2)
			for a := 0; a < tr.Alpha; a++ {
				ih := baseH + a
				if ih < 0 || ih >= in.H {
					continue
				}
				for b := 0; b < tr.Alpha; b++ {
					iw := baseW + b
					if iw < 0 || iw >= in.W {
						continue
					}
					d[a*tr.Alpha+b] = x.At(nn, cc, ih, iw)
				}
			}
			vt := make([]float32, alpha2)
			tmp := make([]float32, alpha2)
			tr.InputTransform(vt, d, tmp)
			for e := 0; e < alpha2; e++ {
				v[e*c*bp+cc*bp+dp] = vt[e]
			}
		})
		// Spectral GEMMs: M[e] (k x cnt) = U[e] (k x c) * V[e] (c x cnt).
		for e := 0; e < alpha2; e++ {
			blas.Sgemm(false, false, k, cnt, c,
				1, u[e*k*c:(e+1)*k*c], c, v[e*c*bp:e*c*bp+c*bp], bp, 0,
				mm[e*k*bp:e*k*bp+k*bp], bp)
		}
		// Inverse transforms and scatter.
		parallelFor(k*cnt, func(i int) {
			kk, dp := i/cnt, i%cnt
			pp := p0 + dp
			nn := pp / tilesPer
			th := (pp % tilesPer) / tilesW
			tw := pp % tilesW
			macc := make([]float32, alpha2)
			for e := 0; e < alpha2; e++ {
				macc[e] = mm[e*k*bp+kk*bp+dp]
			}
			yt := make([]float32, m*m)
			tmp := make([]float32, m*tr.Alpha)
			tr.OutputTransform(yt, macc, tmp)
			for a := 0; a < m; a++ {
				oh := th*m + a
				if oh >= out.H {
					break
				}
				for b := 0; b < m; b++ {
					ow := tw*m + b
					if ow >= out.W {
						break
					}
					blend(&y.Data[y.Index(nn, kk, oh, ow)], yt[a*m+b], alpha, beta)
				}
			}
		})
	}
}

// winogradBackwardFilter computes dW = alpha*grad + beta*dW using the
// exact adjoint of the Winograd forward tiling (non-fused only).
func winogradBackwardFilter(tr *winograd.Transform, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32, ws []float32) {
	p := cs.Params.Normalized()
	out := cs.OutShape()
	in := cs.In
	m, alpha2 := tr.M, tr.Alpha*tr.Alpha
	r := cs.Filt.R
	c, k := cs.Filt.C, cs.Filt.K
	tilesH, tilesW, total := winogradTiles(m, out.H, out.W, in.N)
	tilesPer := tilesH * tilesW

	v := ws[:alpha2*c*total]
	wb := ws[alpha2*c*total : alpha2*(c+k)*total]
	du := ws[alpha2*(c+k)*total : alpha2*((c+k)*total+k*c)]

	// Input tiles (same gather as forward): V[e][cc*total + p].
	parallelFor(c*total, func(i int) {
		cc, pp := i/total, i%total
		nn := pp / tilesPer
		th := (pp % tilesPer) / tilesW
		tw := pp % tilesW
		baseH := th*m - p.PadH
		baseW := tw*m - p.PadW
		d := make([]float32, alpha2)
		for a := 0; a < tr.Alpha; a++ {
			ih := baseH + a
			if ih < 0 || ih >= in.H {
				continue
			}
			for b := 0; b < tr.Alpha; b++ {
				iw := baseW + b
				if iw < 0 || iw >= in.W {
					continue
				}
				d[a*tr.Alpha+b] = x.At(nn, cc, ih, iw)
			}
		}
		vt := make([]float32, alpha2)
		tmp := make([]float32, alpha2)
		tr.InputTransform(vt, d, tmp)
		for e := 0; e < alpha2; e++ {
			v[e*c*total+cc*total+pp] = vt[e]
		}
	})
	// Output-gradient tiles through the adjoint: Wb[e][kk*total + p].
	parallelFor(k*total, func(i int) {
		kk, pp := i/total, i%total
		nn := pp / tilesPer
		th := (pp % tilesPer) / tilesW
		tw := pp % tilesW
		dy := make([]float32, m*m)
		for a := 0; a < m; a++ {
			oh := th*m + a
			if oh >= out.H {
				break
			}
			for b := 0; b < m; b++ {
				ow := tw*m + b
				if ow >= out.W {
					break
				}
				dy[a*m+b] = y.At(nn, kk, oh, ow)
			}
		}
		wt := make([]float32, alpha2)
		tmp := make([]float32, tr.Alpha*m)
		tr.OutputAdjoint(wt, dy, tmp)
		for e := 0; e < alpha2; e++ {
			wb[e*k*total+kk*total+pp] = wt[e]
		}
	})
	// Spectral accumulation: dU[e] (k x c) = Wb[e] (k x total) * V[e]ᵀ.
	for e := 0; e < alpha2; e++ {
		blas.Sgemm(false, true, k, c, total,
			1, wb[e*k*total:(e+1)*k*total], total, v[e*c*total:(e+1)*c*total], total, 0,
			du[e*k*c:(e+1)*k*c], c)
	}
	// Back to filter space.
	parallelFor(k*c, func(i int) {
		kk, cc := i/c, i%c
		uacc := make([]float32, alpha2)
		for e := 0; e < alpha2; e++ {
			uacc[e] = du[e*k*c+i]
		}
		g := make([]float32, r*r)
		tmp := make([]float32, r*tr.Alpha)
		tr.FilterAdjoint(g, uacc, tmp)
		for a := 0; a < r; a++ {
			for b := 0; b < r; b++ {
				blend(&w.Data[w.Index(kk, cc, a, b)], g[a*r+b], alpha, beta)
			}
		}
	})
}
