package conv

import "ucudnn/internal/prof"

// Profiler phases of the conv algorithms. Each kernel run tiles its
// measured time into these windows, so the cost-attribution report can
// answer "is GEMM time im2col-pack or SGEMM?" per layer. Names are
// compile-time ucudnn_ph_* constants (enforced by the phasename
// analyzer, like flight's ucudnn_ev_* events).
const (
	// GEMM algorithm: im2col/col2im patch packing (including the
	// zero/scale passes fused into it) and the deterministic partial-dW
	// reduction of BackwardFilter. The SGEMM itself self-reports
	// ucudnn_ph_sgemm_pack / ucudnn_ph_sgemm_kernel from internal/blas.
	PhGemmIm2col prof.Phase = "ucudnn_ph_gemm_im2col"
	PhGemmReduce prof.Phase = "ucudnn_ph_gemm_reduce"

	// Winograd algorithm: input/filter tile transforms in, the
	// element-wise spectral multiply (a batched GEMM), and the inverse
	// output transform.
	PhWinogradTransformIn  prof.Phase = "ucudnn_ph_winograd_transform_in"
	PhWinogradElementwise  prof.Phase = "ucudnn_ph_winograd_elementwise"
	PhWinogradTransformOut prof.Phase = "ucudnn_ph_winograd_transform_out"

	// FFT algorithm: real-to-complex forward transforms (embed + rfft),
	// the pointwise spectral multiply-accumulate over the stored
	// Hermitian half-spectra, and the complex-to-real inverse transforms
	// (including the final blend into the output tensor).
	PhRFFTForward   prof.Phase = "ucudnn_ph_rfft_forward"
	PhRFFTPointwise prof.Phase = "ucudnn_ph_rfft_pointwise"
	PhRFFTInverse   prof.Phase = "ucudnn_ph_rfft_inverse"

	// Direct and implicit-GEMM algorithms: one main loop each, plus the
	// implicit-precomp variant's index-table build.
	PhDirectMain      prof.Phase = "ucudnn_ph_direct_main"
	PhImplicitMain    prof.Phase = "ucudnn_ph_implicit_main"
	PhImplicitPrecomp prof.Phase = "ucudnn_ph_implicit_precomp"
)

var (
	phGemmIm2col = prof.Register(PhGemmIm2col)
	phGemmReduce = prof.Register(PhGemmReduce)

	phWinogradTransformIn  = prof.Register(PhWinogradTransformIn)
	phWinogradElementwise  = prof.Register(PhWinogradElementwise)
	phWinogradTransformOut = prof.Register(PhWinogradTransformOut)

	phRFFTForward   = prof.Register(PhRFFTForward)
	phRFFTPointwise = prof.Register(PhRFFTPointwise)
	phRFFTInverse   = prof.Register(PhRFFTInverse)

	phDirectMain      = prof.Register(PhDirectMain)
	phImplicitMain    = prof.Register(PhImplicitMain)
	phImplicitPrecomp = prof.Register(PhImplicitPrecomp)
)
