package conv

import (
	"math"
	"math/rand"
	"testing"

	"ucudnn/internal/tensor"
)

// testShapes covers strided, padded, dilated, odd-sized and kernel-variant
// convolutions. FFT/Winograd algorithms skip the shapes they don't support
// via Supported, which is itself under test.
var testShapes = []tensor.ConvShape{
	{In: tensor.Shape{N: 2, C: 3, H: 8, W: 8}, Filt: tensor.Filter{K: 4, C: 3, R: 3, S: 3}, Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}},
	{In: tensor.Shape{N: 1, C: 2, H: 9, W: 7}, Filt: tensor.Filter{K: 3, C: 2, R: 3, S: 3}, Params: tensor.ConvParams{StrideH: 1, StrideW: 1}},
	{In: tensor.Shape{N: 2, C: 2, H: 11, W: 11}, Filt: tensor.Filter{K: 2, C: 2, R: 5, S: 5}, Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1}},
	{In: tensor.Shape{N: 3, C: 4, H: 6, W: 6}, Filt: tensor.Filter{K: 2, C: 4, R: 3, S: 3}, Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 2, StrideW: 2}},
	{In: tensor.Shape{N: 1, C: 1, H: 12, W: 12}, Filt: tensor.Filter{K: 1, C: 1, R: 1, S: 1}, Params: tensor.ConvParams{StrideH: 1, StrideW: 1}},
	{In: tensor.Shape{N: 2, C: 3, H: 10, W: 10}, Filt: tensor.Filter{K: 3, C: 3, R: 3, S: 3}, Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1, DilationH: 2, DilationW: 2}},
	{In: tensor.Shape{N: 2, C: 2, H: 13, W: 9}, Filt: tensor.Filter{K: 3, C: 2, R: 4, S: 2}, Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}},
	{In: tensor.Shape{N: 4, C: 2, H: 7, W: 7}, Filt: tensor.Filter{K: 3, C: 2, R: 3, S: 3}, Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}},
	// Output extents >= winogradLargeTileMin: the non-fused Winograd path
	// selects F(6x6,3x3) here, so the whole matrix exercises it.
	{In: tensor.Shape{N: 2, C: 3, H: 16, W: 16}, Filt: tensor.Filter{K: 4, C: 3, R: 3, S: 3}, Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}},
}

func randomProblem(cs tensor.ConvShape, seed int64) (*tensor.Tensor, *tensor.FilterTensor, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.NewShaped(cs.In)
	x.Randomize(rng, 1)
	w := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	w.Randomize(rng, 1)
	y := tensor.NewShaped(cs.OutShape())
	y.Randomize(rng, 1)
	return x, w, y
}

// runRef executes the direct reference for op.
func runRef(op Op, cs tensor.ConvShape, x *tensor.Tensor, w *tensor.FilterTensor, y *tensor.Tensor, alpha, beta float32) {
	runDirect(op, cs, x, w, y, alpha, beta)
}

func wsFor(t *testing.T, op Op, algo Algo, cs tensor.ConvShape) []float32 {
	t.Helper()
	bytes, ok := Workspace(op, algo, cs)
	if !ok {
		t.Fatalf("Workspace(%v,%v) unsupported", op, algo)
	}
	return make([]float32, (bytes+3)/4)
}

// tolFor scales the comparison tolerance by problem size; FFT in fp32
// storage and Winograd large tiles lose a few bits.
func tolFor(algo Algo, cs tensor.ConvShape) float64 {
	base := 1e-4 * math.Sqrt(float64(cs.Filt.C*cs.Filt.R*cs.Filt.S))
	switch algo {
	case AlgoFFT, AlgoFFTTiling:
		return 5 * base
	case AlgoWinograd, AlgoWinogradNonfused:
		return 10 * base
	}
	return base
}

func TestAllAlgorithmsMatchDirect(t *testing.T) {
	for _, op := range Ops {
		for _, algo := range AlgosFor(op) {
			if algo == AlgoDirect {
				continue
			}
			for si, cs := range testShapes {
				if !Supported(op, algo, cs) {
					continue
				}
				x, w, y := randomProblem(cs, int64(si+1))
				xr, wr, yr := x.Clone(), w.Clone(), y.Clone()
				alpha, beta := float32(1), float32(0)
				runRef(op, cs, xr, wr, yr, alpha, beta)
				ws := wsFor(t, op, algo, cs)
				if err := Run(op, algo, cs, x, w, y, alpha, beta, ws); err != nil {
					t.Fatalf("%v/%v shape %d: %v", op, algo, si, err)
				}
				var got, want []float32
				switch op {
				case Forward:
					got, want = y.Data, yr.Data
				case BackwardData:
					got, want = x.Data, xr.Data
				case BackwardFilter:
					got, want = w.Data, wr.Data
				}
				if !tensor.AllClose(got, want, tolFor(algo, cs), 1e-3) {
					t.Errorf("%v/%v shape %d (%v): maxdiff %g (maxabs %g)",
						op, algo, si, cs, tensor.MaxAbsDiff(got, want), tensor.MaxAbs(want))
				}
			}
		}
	}
}

func TestAlphaBetaBlend(t *testing.T) {
	cs := testShapes[0]
	for _, op := range Ops {
		for _, algo := range AlgosFor(op) {
			if !Supported(op, algo, cs) {
				continue
			}
			alpha, beta := float32(0.5), float32(0.25)
			x, w, y := randomProblem(cs, 7)
			xr, wr, yr := x.Clone(), w.Clone(), y.Clone()
			runRef(op, cs, xr, wr, yr, alpha, beta)
			ws := wsFor(t, op, algo, cs)
			if err := Run(op, algo, cs, x, w, y, alpha, beta, ws); err != nil {
				t.Fatalf("%v/%v: %v", op, algo, err)
			}
			var got, want []float32
			switch op {
			case Forward:
				got, want = y.Data, yr.Data
			case BackwardData:
				got, want = x.Data, xr.Data
			case BackwardFilter:
				got, want = w.Data, wr.Data
			}
			if !tensor.AllClose(got, want, tolFor(algo, cs), 1e-3) {
				t.Errorf("%v/%v alpha/beta: maxdiff %g", op, algo, tensor.MaxAbsDiff(got, want))
			}
		}
	}
}

// The paper's core semantic claim (§II): splitting the mini-batch loop
// preserves the computation. Forward/BackwardData split trivially;
// BackwardFilter splits by accumulating with beta=1.
func TestMicroBatchEquivalence(t *testing.T) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 6, C: 3, H: 8, W: 8},
		Filt:   tensor.Filter{K: 4, C: 3, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	splits := [][]int{{6}, {3, 3}, {1, 2, 3}, {2, 2, 2}, {5, 1}}
	for _, op := range Ops {
		for _, algo := range AlgosFor(op) {
			if !Supported(op, algo, cs) {
				continue
			}
			x, w, y := randomProblem(cs, 11)
			// Undivided reference with the algorithm itself.
			xu, wu, yu := x.Clone(), w.Clone(), y.Clone()
			ws := wsFor(t, op, algo, cs)
			if err := Run(op, algo, cs, xu, wu, yu, 1, 0, ws); err != nil {
				t.Fatal(err)
			}
			for _, split := range splits {
				xs, wsT, ys := x.Clone(), w.Clone(), y.Clone()
				off := 0
				for mi, mb := range split {
					mcs := cs.WithN(mb)
					mws := wsFor(t, op, algo, mcs)
					var err error
					switch op {
					case Forward:
						err = Run(op, algo, mcs, xs.Sample(off, mb), wsT, ys.Sample(off, mb), 1, 0, mws)
					case BackwardData:
						err = Run(op, algo, mcs, xs.Sample(off, mb), wsT, ys.Sample(off, mb), 1, 0, mws)
					case BackwardFilter:
						beta := float32(1)
						if mi == 0 {
							beta = 0
						}
						err = Run(op, algo, mcs, xs.Sample(off, mb), wsT, ys.Sample(off, mb), 1, beta, mws)
					}
					if err != nil {
						t.Fatalf("%v/%v split %v: %v", op, algo, split, err)
					}
					off += mb
				}
				var got, want []float32
				switch op {
				case Forward:
					got, want = ys.Data, yu.Data
				case BackwardData:
					got, want = xs.Data, xu.Data
				case BackwardFilter:
					got, want = wsT.Data, wu.Data
				}
				if !tensor.AllClose(got, want, tolFor(algo, cs), 1e-3) {
					t.Errorf("%v/%v split %v: maxdiff %g", op, algo, split, tensor.MaxAbsDiff(got, want))
				}
			}
		}
	}
}

// For the direct algorithm the micro-batched BackwardFilter accumulation
// is bit-for-bit identical to the undivided run (DESIGN.md invariant 1).
func TestDirectBackwardFilterBitwiseMicroBatch(t *testing.T) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 5, C: 2, H: 6, W: 6},
		Filt:   tensor.Filter{K: 3, C: 2, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	x, w, y := randomProblem(cs, 13)
	wu := w.Clone()
	runDirect(BackwardFilter, cs, x, wu, y, 1, 0)
	for _, split := range [][]int{{2, 3}, {1, 1, 3}, {4, 1}} {
		wsT := w.Clone()
		off := 0
		for mi, mb := range split {
			beta := float32(1)
			if mi == 0 {
				beta = 0
			}
			runDirect(BackwardFilter, cs.WithN(mb), x.Sample(off, mb), wsT, y.Sample(off, mb), 1, beta)
			off += mb
		}
		for i := range wsT.Data {
			if wsT.Data[i] != wu.Data[i] {
				t.Fatalf("split %v: dW[%d] = %x != %x", split, i,
					math.Float32bits(wsT.Data[i]), math.Float32bits(wu.Data[i]))
			}
		}
	}
}

func TestRunRejectsSmallWorkspace(t *testing.T) {
	cs := testShapes[0]
	x, w, y := randomProblem(cs, 17)
	need, _ := MinWorkspace(Forward, AlgoGemm, cs)
	small := make([]float32, need/4-1)
	if err := Run(Forward, AlgoGemm, cs, x, w, y, 1, 0, small); err == nil {
		t.Fatal("expected workspace error")
	}
	// Anything from the floor up to the full striped size must execute.
	if err := Run(Forward, AlgoGemm, cs, x, w, y, 1, 0, make([]float32, need/4)); err != nil {
		t.Fatalf("MinWorkspace-sized buffer rejected: %v", err)
	}
}

func TestRunRejectsShapeMismatch(t *testing.T) {
	cs := testShapes[0]
	x, w, y := randomProblem(cs, 19)
	bad := tensor.NewShaped(cs.In.WithN(cs.In.N + 1))
	if err := Run(Forward, AlgoDirect, cs, bad, w, y, 1, 0, nil); err == nil {
		t.Fatal("expected x-shape error")
	}
	if err := Run(Forward, AlgoDirect, cs, x, tensor.NewFilter(1, cs.Filt.C, 3, 3), y, 1, 0, nil); err == nil {
		t.Fatal("expected filter error")
	}
	if err := Run(Forward, AlgoDirect, cs, x, w, tensor.NewShaped(cs.In), 1, 0, nil); err == nil {
		t.Fatal("expected y-shape error")
	}
}

func TestSupportedMatrix(t *testing.T) {
	stride2 := tensor.ConvShape{In: tensor.Shape{N: 1, C: 1, H: 8, W: 8}, Filt: tensor.Filter{K: 1, C: 1, R: 3, S: 3}, Params: tensor.ConvParams{StrideH: 2, StrideW: 2}}
	k5 := tensor.ConvShape{In: tensor.Shape{N: 1, C: 1, H: 8, W: 8}, Filt: tensor.Filter{K: 1, C: 1, R: 5, S: 5}, Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1}}
	k3 := tensor.ConvShape{In: tensor.Shape{N: 1, C: 1, H: 8, W: 8}, Filt: tensor.Filter{K: 1, C: 1, R: 3, S: 3}, Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}}
	if Supported(Forward, AlgoFFT, stride2) {
		t.Error("FFT must reject stride 2")
	}
	if Supported(Forward, AlgoWinograd, k5) {
		t.Error("fused Winograd must reject 5x5")
	}
	if !Supported(Forward, AlgoWinogradNonfused, k5) {
		t.Error("non-fused Winograd must accept 5x5")
	}
	if !Supported(Forward, AlgoWinograd, k3) {
		t.Error("fused Winograd must accept 3x3 stride 1")
	}
	if Supported(BackwardData, AlgoImplicitPrecompGemm, k3) {
		t.Error("IMPLICIT_PRECOMP_GEMM is forward-only")
	}
	if Supported(BackwardFilter, AlgoWinograd, k3) {
		t.Error("fused Winograd has no BackwardFilter")
	}
	bad := tensor.ConvShape{In: tensor.Shape{N: 1, C: 2, H: 4, W: 4}, Filt: tensor.Filter{K: 1, C: 3, R: 3, S: 3}}
	for _, op := range Ops {
		for algo := Algo(0); algo < NumAlgos; algo++ {
			if Supported(op, algo, bad) {
				t.Errorf("%v/%v accepted invalid shape", op, algo)
			}
		}
	}
}

// FFT workspace must dwarf GEMM's on a conv2-like layer: the size
// relationship that drives the whole paper.
func TestWorkspaceOrdering(t *testing.T) {
	conv2 := tensor.ConvShape{
		In:     tensor.Shape{N: 256, C: 64, H: 27, W: 27},
		Filt:   tensor.Filter{K: 192, C: 64, R: 5, S: 5},
		Params: tensor.ConvParams{PadH: 2, PadW: 2, StrideH: 1, StrideW: 1},
	}
	fft, ok := Workspace(Forward, AlgoFFT, conv2)
	if !ok {
		t.Fatal("FFT should support conv2")
	}
	gemm, _ := Workspace(Forward, AlgoGemm, conv2)
	zero, _ := Workspace(Forward, AlgoImplicitGemm, conv2)
	if zero != 0 {
		t.Fatal("implicit GEMM workspace must be zero")
	}
	if fft < 100<<20 {
		t.Fatalf("conv2 FFT workspace = %d MiB, want hundreds of MiB", fft>>20)
	}
	if gemm > 32<<20 || gemm == 0 {
		t.Fatalf("conv2 GEMM workspace = %d, want small nonzero", gemm)
	}
	// Micro-batching must shrink the FFT workspace.
	fft32, _ := Workspace(Forward, AlgoFFT, conv2.WithN(32))
	if fft32*2 > fft {
		t.Fatalf("FFT workspace not batch-proportional: %d vs %d", fft32, fft)
	}
	// FFT_TILING must need less workspace than FFT on larger spatial dims.
	big := tensor.ConvShape{
		In:     tensor.Shape{N: 32, C: 64, H: 56, W: 56},
		Filt:   tensor.Filter{K: 64, C: 64, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	full, _ := Workspace(Forward, AlgoFFT, big)
	tiled, _ := Workspace(Forward, AlgoFFTTiling, big)
	if tiled >= full {
		t.Fatalf("tiling workspace %d should beat full FFT %d", tiled, full)
	}
}

// Numeric gradient check: BackwardData and BackwardFilter must be the true
// gradients of Forward.
func TestGradientsNumerically(t *testing.T) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 2, C: 2, H: 5, W: 5},
		Filt:   tensor.Filter{K: 2, C: 2, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 2, StrideW: 2},
	}
	x, w, _ := randomProblem(cs, 23)
	out := cs.OutShape()
	// Loss = sum(conv(x, w) * g) for fixed random g.
	rng := rand.New(rand.NewSource(24))
	g := tensor.NewShaped(out)
	g.Randomize(rng, 1)
	loss := func(x *tensor.Tensor, w *tensor.FilterTensor) float64 {
		y := tensor.NewShaped(out)
		runDirect(Forward, cs, x, w, y, 1, 0)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i]) * float64(g.Data[i])
		}
		return s
	}
	// Analytic gradients.
	dx := tensor.NewShaped(cs.In)
	runDirect(BackwardData, cs, dx, w, g, 1, 0)
	dw := tensor.NewFilter(cs.Filt.K, cs.Filt.C, cs.Filt.R, cs.Filt.S)
	runDirect(BackwardFilter, cs, x, dw, g, 1, 0)
	const h = 1e-2
	for _, i := range []int{0, 7, len(x.Data) - 1} {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss(x, w)
		x.Data[i] = orig - h
		lm := loss(x, w)
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-float64(dx.Data[i])) > 1e-2*(1+math.Abs(num)) {
			t.Errorf("dX[%d]: numeric %g analytic %g", i, num, dx.Data[i])
		}
	}
	for _, i := range []int{0, 5, len(w.Data) - 1} {
		orig := w.Data[i]
		w.Data[i] = orig + h
		lp := loss(x, w)
		w.Data[i] = orig - h
		lm := loss(x, w)
		w.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-float64(dw.Data[i])) > 1e-2*(1+math.Abs(num)) {
			t.Errorf("dW[%d]: numeric %g analytic %g", i, num, dw.Data[i])
		}
	}
}

func TestAlgoStrings(t *testing.T) {
	if AlgoFFT.String() != "FFT" || AlgoWinogradNonfused.String() != "WINOGRAD_NONFUSED" {
		t.Fatal("algo names wrong")
	}
	if Forward.String() != "Forward" || BackwardFilter.String() != "BackwardFilter" {
		t.Fatal("op names wrong")
	}
	if Algo(99).String() == "" || Op(99).String() == "" {
		t.Fatal("out-of-range strings must not be empty")
	}
}

func TestAlgosForCounts(t *testing.T) {
	if n := len(AlgosFor(Forward)); n != 8 {
		t.Fatalf("forward algos = %d, want 8", n)
	}
	if n := len(AlgosFor(BackwardData)); n != 7 {
		t.Fatalf("bwd-data algos = %d, want 7", n)
	}
	if n := len(AlgosFor(BackwardFilter)); n != 6 {
		t.Fatalf("bwd-filter algos = %d, want 6", n)
	}
	if AlgosFor(Op(9)) != nil {
		t.Fatal("unknown op must have no algos")
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 3, 100} {
		hits := make([]int32, n)
		parallelFor(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}
