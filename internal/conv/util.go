package conv

import "ucudnn/internal/prof"

// parallelFor runs f(i) for i in [0, n) across at most MaxWorkers workers
// in contiguous chunks. Chunk ownership is deterministic, so kernels that
// write disjoint regions per index stay reproducible.
func parallelFor(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	stripedRun(workers, func(w int) {
		lo, hi := chunkBounds(n, workers, w)
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// phaseFor is parallelFor with each worker's chunk timed as one window
// of phase ph (see phaseForW for the accounting rationale).
func phaseFor(ph prof.Kind, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		t := prof.Enter()
		for i := 0; i < n; i++ {
			f(i)
		}
		prof.Exit(ph, t)
		return
	}
	stripedRun(workers, func(w int) {
		lo, hi := chunkBounds(n, workers, w)
		t := prof.Enter()
		for i := lo; i < hi; i++ {
			f(i)
		}
		prof.Exit(ph, t)
	})
}

// blend writes out = alpha*v + beta*out for one element.
func blend(out *float32, v, alpha, beta float32) {
	if beta == 0 {
		*out = alpha * v
	} else {
		*out = alpha*v + beta**out
	}
}

func imin(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func imax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
