//go:build !amd64

package blas

const useAVX = false

func sgemmTileAVX(pa, pb *float32, kb int, acc *[mr * nr]float32) {
	panic("blas: sgemmTileAVX without amd64")
}
