// AVX micro-kernel for the packed SGEMM tile walk. Lanes vectorize
// across the nr C columns while every C element keeps the exact
// mul-then-add k-order chain of the pure-Go tile (VMULPS + VADDPS, never
// FMA — fusing would skip the intermediate rounding and change bits), so
// the asm and generic paths produce bitwise-identical results.

#include "textflag.h"

// func sgemmTileAVX(pa, pb *float32, kb int, acc *[32]float32)
//
// Computes acc[i][j] = sum_p pa[p*4+i] * pb[p*8+j] for one 4x8 tile:
// pa is one packed A row-panel ([kb][4], alpha fused), pb one packed B
// column-panel ([kb][8]). Rows live in Y0-Y3 across the whole k extent;
// the k loop is unrolled by two.
TEXT ·sgemmTileAVX(SB), NOSPLIT, $0-32
	MOVQ pa+0(FP), SI
	MOVQ pb+8(FP), DI
	MOVQ kb+16(FP), CX
	MOVQ acc+24(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	SUBQ $2, CX
	JL   tail

pair:
	VMOVUPS      (DI), Y12
	VMOVUPS      32(DI), Y13
	VBROADCASTSS (SI), Y14
	VBROADCASTSS 4(SI), Y15
	VMULPS       Y12, Y14, Y14
	VADDPS       Y14, Y0, Y0
	VMULPS       Y12, Y15, Y15
	VADDPS       Y15, Y1, Y1
	VBROADCASTSS 8(SI), Y14
	VBROADCASTSS 12(SI), Y15
	VMULPS       Y12, Y14, Y14
	VADDPS       Y14, Y2, Y2
	VMULPS       Y12, Y15, Y15
	VADDPS       Y15, Y3, Y3
	VBROADCASTSS 16(SI), Y14
	VBROADCASTSS 20(SI), Y15
	VMULPS       Y13, Y14, Y14
	VADDPS       Y14, Y0, Y0
	VMULPS       Y13, Y15, Y15
	VADDPS       Y15, Y1, Y1
	VBROADCASTSS 24(SI), Y14
	VBROADCASTSS 28(SI), Y15
	VMULPS       Y13, Y14, Y14
	VADDPS       Y14, Y2, Y2
	VMULPS       Y13, Y15, Y15
	VADDPS       Y15, Y3, Y3
	ADDQ $32, SI
	ADDQ $64, DI
	SUBQ $2, CX
	JGE  pair

tail:
	ADDQ $2, CX
	JZ   done
	VMOVUPS      (DI), Y12
	VBROADCASTSS (SI), Y14
	VBROADCASTSS 4(SI), Y15
	VMULPS       Y12, Y14, Y14
	VADDPS       Y14, Y0, Y0
	VMULPS       Y12, Y15, Y15
	VADDPS       Y15, Y1, Y1
	VBROADCASTSS 8(SI), Y14
	VBROADCASTSS 12(SI), Y15
	VMULPS       Y12, Y14, Y14
	VADDPS       Y14, Y2, Y2
	VMULPS       Y12, Y15, Y15
	VADDPS       Y15, Y3, Y3

done:
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VZEROUPPER
	RET

// func cpuidLow(arg1, arg2 uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidLow(SB), NOSPLIT, $0-24
	MOVL arg1+0(FP), AX
	MOVL arg2+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
