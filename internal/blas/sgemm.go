// Package blas implements the single-precision dense linear algebra
// kernels the convolution algorithms are lowered onto: a blocked,
// goroutine-parallel SGEMM and a few vector helpers. Only the row-major
// convention is supported, matching the repository's NCHW tensors.
package blas

import (
	"runtime"
	"sync"

	"ucudnn/internal/prof"
)

// blocking parameters for the micro-kernel; sized so an (mc x kc) A-panel
// and a (kc x nc) B-panel fit comfortably in L2.
const (
	blockM = 64
	blockN = 256
	blockK = 128
)

// parallelThreshold is the minimum number of multiply-adds below which
// Sgemm runs single-threaded; spawning goroutines for tiny GEMMs costs
// more than the arithmetic.
const parallelThreshold = 1 << 16

// Sgemm computes C = alpha * op(A) * op(B) + beta * C for row-major
// matrices, where op(X) is X or Xᵀ according to transA/transB.
//
// A is (m x k) after op, with leading dimension lda; B is (k x n) after
// op, with leading dimension ldb; C is (m x n) with leading dimension ldc.
//
//ucudnn:hotpath
func Sgemm(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	SgemmWorkers(0, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// SgemmWorkers is Sgemm with an explicit cap on the goroutines used:
// workers <= 0 selects automatically (GOMAXPROCS, dropping to one thread
// for small products), workers == 1 forces the serial path (callers that
// already parallelize across GEMM invocations use this to avoid
// oversubscription). Every element of C is accumulated in the same order
// regardless of the worker count, so results are bit-identical across
// all settings.
//
//ucudnn:hotpath
func SgemmWorkers(workers int, transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	if m == 0 || n == 0 {
		return
	}
	checkDims(transA, transB, m, n, k, a, lda, b, ldb, c, ldc)
	scaleC(m, n, beta, c, ldc)
	if k == 0 || alpha == 0 {
		return
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if int64(m)*int64(n)*int64(k) < parallelThreshold {
			workers = 1
		}
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		sgemmRows(transA, transB, 0, m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	// This launch is "nested" to the profiler: it only happens under a
	// serial outer loop whose phase window already covers this region as
	// wall time, so only its load imbalance is recorded, not its busy
	// time (see prof's accounting model).
	ls := prof.LaunchStart()
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	launched := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		launched++
		wg.Add(1)
		//ucudnn:allow hotpath -- the multi-worker path forks by design; callers on the zero-alloc path pass workers==1
		go func(w, lo, hi int) {
			defer wg.Done()
			bs := prof.WorkerStart()
			sgemmRows(transA, transB, lo, hi, n, k, alpha, a, lda, b, ldb, c, ldc)
			prof.WorkerEnd(w, bs)
		}(w, lo, hi)
	}
	wg.Wait()
	prof.LaunchEndNested(launched, ls)
}

//ucudnn:hotpath
func checkDims(transA, transB bool, m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic("blas: negative dimension")
	}
	arows, acols := m, k
	if transA {
		arows, acols = k, m
	}
	brows, bcols := k, n
	if transB {
		brows, bcols = n, k
	}
	if lda < max(1, acols) || ldb < max(1, bcols) || ldc < max(1, n) {
		panic("blas: bad leading dimension")
	}
	if arows > 0 && acols > 0 && len(a) < (arows-1)*lda+acols {
		panic("blas: A too short")
	}
	if brows > 0 && bcols > 0 && len(b) < (brows-1)*ldb+bcols {
		panic("blas: B too short")
	}
	if m > 0 && len(c) < (m-1)*ldc+n {
		panic("blas: C too short")
	}
}

//ucudnn:hotpath
func scaleC(m, n int, beta float32, c []float32, ldc int) {
	if beta == 1 {
		return
	}
	for i := 0; i < m; i++ {
		row := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] *= beta
			}
		}
	}
}

// sgemmRows computes rows [mLo, mHi) of C += alpha*op(A)*op(B) with cache
// blocking. C has already been scaled by beta.
//
//ucudnn:hotpath
func sgemmRows(transA, transB bool, mLo, mHi, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	var packA [blockM * blockK]float32
	var packB [blockK * blockN]float32
	for j0 := 0; j0 < n; j0 += blockN {
		jb := min(blockN, n-j0)
		for k0 := 0; k0 < k; k0 += blockK {
			kb := min(blockK, k-k0)
			packBPanel(&packB, transB, b, ldb, k0, kb, j0, jb)
			for i0 := mLo; i0 < mHi; i0 += blockM {
				ib := min(blockM, mHi-i0)
				packAPanel(&packA, transA, a, lda, i0, ib, k0, kb, alpha)
				microKernel(&packA, &packB, ib, jb, kb, c, ldc, i0, j0)
			}
		}
	}
}

// packBPanel copies op(B)[k0:k0+kb, j0:j0+jb] into pack, row-major kb x jb.
//
//ucudnn:hotpath
func packBPanel(pack *[blockK * blockN]float32, transB bool, b []float32, ldb int, k0, kb, j0, jb int) {
	if !transB {
		for p := 0; p < kb; p++ {
			copy(pack[p*jb:(p+1)*jb], b[(k0+p)*ldb+j0:(k0+p)*ldb+j0+jb])
		}
	} else {
		for p := 0; p < kb; p++ {
			for j := 0; j < jb; j++ {
				pack[p*jb+j] = b[(j0+j)*ldb+(k0+p)]
			}
		}
	}
}

// packAPanel copies alpha*op(A)[i0:i0+ib, k0:k0+kb] into pack, row-major
// ib x kb.
//
//ucudnn:hotpath
func packAPanel(pack *[blockM * blockK]float32, transA bool, a []float32, lda int, i0, ib, k0, kb int, alpha float32) {
	if !transA {
		for i := 0; i < ib; i++ {
			src := a[(i0+i)*lda+k0 : (i0+i)*lda+k0+kb]
			dst := pack[i*kb : (i+1)*kb]
			if alpha == 1 {
				copy(dst, src)
			} else {
				for p := range src {
					dst[p] = alpha * src[p]
				}
			}
		}
	} else {
		for i := 0; i < ib; i++ {
			for p := 0; p < kb; p++ {
				pack[i*kb+p] = alpha * a[(k0+p)*lda+(i0+i)]
			}
		}
	}
}

// microKernel accumulates packA (ib x kb) * packB (kb x jb) into
// C[i0:i0+ib, j0:j0+jb]. The inner loop is over j so it vectorizes.
//
// Rows are processed in pairs so each loaded B element feeds two C rows,
// halving B-panel bandwidth. Each C element still sees the exact k-pair
// accumulation order of the single-row kernel, so results are unchanged
// bit for bit.
//
//ucudnn:hotpath
func microKernel(packA *[blockM * blockK]float32, packB *[blockK * blockN]float32, ib, jb, kb int, c []float32, ldc, i0, j0 int) {
	i := 0
	for ; i+1 < ib; i += 2 {
		crow0 := c[(i0+i)*ldc+j0 : (i0+i)*ldc+j0+jb]
		crow1 := c[(i0+i+1)*ldc+j0 : (i0+i+1)*ldc+j0+jb]
		arow0 := packA[i*kb : (i+1)*kb]
		arow1 := packA[(i+1)*kb : (i+2)*kb]
		p := 0
		for ; p+1 < kb; p += 2 {
			a00, a01 := arow0[p], arow0[p+1]
			a10, a11 := arow1[p], arow1[p+1]
			b0 := packB[p*jb : (p+1)*jb]
			b1 := packB[(p+1)*jb : (p+2)*jb]
			crow1 := crow1[:len(b0)]
			for j, c0 := range crow0 {
				crow0[j] = c0 + a00*b0[j] + a01*b1[j]
				crow1[j] += a10*b0[j] + a11*b1[j]
			}
		}
		if p < kb {
			a00 := arow0[p]
			a10 := arow1[p]
			b0 := packB[p*jb : (p+1)*jb]
			crow1 := crow1[:len(b0)]
			for j, c0 := range crow0 {
				crow0[j] = c0 + a00*b0[j]
				crow1[j] += a10 * b0[j]
			}
		}
	}
	if i < ib {
		crow := c[(i0+i)*ldc+j0 : (i0+i)*ldc+j0+jb]
		arow := packA[i*kb : (i+1)*kb]
		p := 0
		for ; p+1 < kb; p += 2 {
			a0, a1 := arow[p], arow[p+1]
			b0 := packB[p*jb : (p+1)*jb]
			b1 := packB[(p+1)*jb : (p+2)*jb]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j]
			}
		}
		if p < kb {
			a0 := arow[p]
			b0 := packB[p*jb : (p+1)*jb]
			for j := range crow {
				crow[j] += a0 * b0[j]
			}
		}
	}
}

// Saxpy computes y += alpha * x.
//
//ucudnn:hotpath
func Saxpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("blas: Saxpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Sdot returns the dot product of x and y.
//
//ucudnn:hotpath
func Sdot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("blas: Sdot length mismatch")
	}
	var s float32
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
