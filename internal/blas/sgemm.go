// Package blas implements the single-precision dense linear algebra
// kernels the convolution algorithms are lowered onto: a blocked,
// goroutine-parallel SGEMM and a few vector helpers. Only the row-major
// convention is supported, matching the repository's NCHW tensors.
package blas

import (
	"runtime"
	"sync"

	"ucudnn/internal/prof"
)

// Profiler phases of the SGEMM kernel itself: panel packing (the A and
// B copies into the blocked layouts, alpha fused into the A-pack) and
// the register-tiled micro-kernel walk. The phased entry points record
// these so a profile can answer "is GEMM time data movement or FMAs?";
// callers that already wrap the whole call in their own phase window use
// the *Quiet variants to keep phase windows non-overlapping.
const (
	PhSgemmPack   prof.Phase = "ucudnn_ph_sgemm_pack"
	PhSgemmKernel prof.Phase = "ucudnn_ph_sgemm_kernel"
)

var (
	phSgemmPack   = prof.Register(PhSgemmPack)
	phSgemmKernel = prof.Register(PhSgemmKernel)
)

// Register blocking of the micro-kernel: each tile computes an mr x nr
// block of C held in registers across the whole k extent of one cache
// block, so C is loaded and stored once per k-block instead of once per
// k step. Panels are zero-padded to full mr/nr width; the padded lanes
// compute zeros that the masked store discards.
//
// The 4x8 tile is sized to the AVX kernel: four YMM accumulators, one
// 8-wide B row load and four A broadcasts per k step. The pure-Go
// fallback computes the same tile as four 2x4 quarters because the gc
// register allocator has only 15 usable XMM registers — 16 scalar
// accumulators spill to the stack and run slower than no tiling at all.
// Both paths accumulate every C element in the exact same k order
// (mul then add, no FMA contraction), so their results are
// bitwise-identical.
const (
	mr = 4
	nr = 8
)

// Cache blocking: the micro-kernel walks an (mc x kc) packed A block
// against a (kc x nc) packed B panel, sized so the A block (~48 KiB)
// stays L2-resident and the kc * nr B panel (6 KiB) stays in L1 while
// the kernel streams over it.
const (
	mc = 64
	kc = 192
	nc = 160
)

// parallelThreshold is the minimum number of multiply-adds below which
// Sgemm runs single-threaded; spawning goroutines for tiny GEMMs costs
// more than the arithmetic.
const parallelThreshold = 1 << 16

// Sgemm computes C = alpha * op(A) * op(B) + beta * C for row-major
// matrices, where op(X) is X or Xᵀ according to transA/transB.
//
// A is (m x k) after op, with leading dimension lda; B is (k x n) after
// op, with leading dimension ldb; C is (m x n) with leading dimension ldc.
//
//ucudnn:hotpath
func Sgemm(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	sgemmWorkers(true, 0, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// SgemmWorkers is Sgemm with an explicit cap on the goroutines used:
// workers <= 0 selects automatically (GOMAXPROCS, dropping to one thread
// for small products), workers == 1 forces the serial path (callers that
// already parallelize across GEMM invocations use this to avoid
// oversubscription). Every element of C is accumulated in the same order
// regardless of the worker count, so results are bit-identical across
// all settings.
//
//ucudnn:hotpath
func SgemmWorkers(workers int, transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	sgemmWorkers(true, workers, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// SgemmWorkersQuiet is SgemmWorkers without the pack/kernel phase
// windows, for callers whose own phase window already covers the call
// (overlapping windows would double-count attributed time).
//
//ucudnn:hotpath
func SgemmWorkersQuiet(workers int, transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	sgemmWorkers(false, workers, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

//ucudnn:hotpath
func sgemmWorkers(rec bool, workers int, transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	if m == 0 || n == 0 {
		return
	}
	checkDims(transA, transB, m, n, k, a, lda, b, ldb, c, ldc)
	if k == 0 || alpha == 0 {
		scaleC(m, n, beta, c, ldc)
		return
	}

	if workers <= 0 {
		//ucudnn:allow hotpathcall -- GOMAXPROCS(0) is a read-only scheduler query; it does not allocate
		workers = runtime.GOMAXPROCS(0)
		if int64(m)*int64(n)*int64(k) < parallelThreshold {
			workers = 1
		}
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		sgemmRows(rec, transA, transB, 0, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	// This launch is "nested" to the profiler: it only happens under a
	// serial outer loop whose phase window already covers this region as
	// wall time, so only its load imbalance is recorded, not its busy
	// time (see prof's accounting model).
	ls := prof.LaunchStart()
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	launched := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		launched++
		wg.Add(1)
		//ucudnn:allow hotpath -- the multi-worker path forks by design; callers on the zero-alloc path pass workers==1
		go func(w, lo, hi int) {
			defer wg.Done()
			bs := prof.WorkerStart()
			sgemmRows(rec, transA, transB, lo, hi, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
			prof.WorkerEnd(w, bs)
		}(w, lo, hi)
	}
	wg.Wait()
	prof.LaunchEndNested(launched, ls)
}

// PackAFloats returns the float32 length of the packed form of an
// (m x k) A operand: rows padded up to a multiple of mr.
func PackAFloats(m, k int) int {
	return ((m + mr - 1) / mr) * mr * k
}

// PackA packs alpha * op(A) — (m x k) after op — into dst, which must
// hold PackAFloats(m, k) elements, in the micro-kernel's blocked layout:
// k-blocks of kc in order, each holding row panels of mr rows stored
// [kb][mr], zero-padded in the row direction. A matrix packed once can
// be multiplied against many B operands via SgemmPackedA — the weight
// matrix of a convolution is packed once per Run and reused across every
// sample and micro-batch.
//
//ucudnn:hotpath
func PackA(dst []float32, transA bool, m, k int, alpha float32, a []float32, lda int) {
	if m < 0 || k < 0 {
		panic("blas: negative dimension")
	}
	if len(dst) < PackAFloats(m, k) {
		panic("blas: PackA dst too short")
	}
	arows, acols := m, k
	if transA {
		arows, acols = k, m
	}
	if lda < max(1, acols) {
		panic("blas: bad leading dimension")
	}
	if arows > 0 && acols > 0 && len(a) < (arows-1)*lda+acols {
		panic("blas: A too short")
	}
	t := prof.Enter()
	pm := ((m + mr - 1) / mr) * mr
	for k0 := 0; k0 < k; k0 += kc {
		kb := min(kc, k-k0)
		packAPanels(dst[pm*k0:], transA, a, lda, 0, m, k0, kb, alpha)
	}
	prof.Exit(phSgemmPack, t)
}

// SgemmPackedA computes C = PA * op(B) + beta * C where PA is the packed
// form of alpha * op(A) produced by PackA for the same (m, k). Worker
// chunks are rounded to whole mr panels; every C element still sees the
// exact k-order accumulation of the serial path, so results are
// bit-identical to SgemmWorkers at every worker count.
//
//ucudnn:hotpath
func SgemmPackedA(workers int, pa []float32, transB bool, m, n, k int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	if m == 0 || n == 0 {
		return
	}
	if len(pa) < PackAFloats(m, k) {
		panic("blas: packed A too short")
	}
	checkDims(false, transB, 0, n, k, nil, max(1, k), b, ldb, c, ldc)
	if len(c) < (m-1)*ldc+n {
		panic("blas: C too short")
	}
	if k == 0 {
		scaleC(m, n, beta, c, ldc)
		return
	}
	panels := (m + mr - 1) / mr
	if workers <= 0 {
		//ucudnn:allow hotpathcall -- GOMAXPROCS(0) is a read-only scheduler query; it does not allocate
		workers = runtime.GOMAXPROCS(0)
		if int64(m)*int64(n)*int64(k) < parallelThreshold {
			workers = 1
		}
	}
	if workers > panels {
		workers = panels
	}
	if workers <= 1 {
		sgemmPackedRows(true, pa, 0, m, m, n, k, transB, b, ldb, beta, c, ldc)
		return
	}
	ls := prof.LaunchStart()
	var wg sync.WaitGroup
	chunk := ((panels + workers - 1) / workers) * mr
	launched := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		launched++
		wg.Add(1)
		//ucudnn:allow hotpath -- the multi-worker path forks by design; callers on the zero-alloc path pass workers==1
		go func(w, lo, hi int) {
			defer wg.Done()
			bs := prof.WorkerStart()
			sgemmPackedRows(true, pa, lo, hi, m, n, k, transB, b, ldb, beta, c, ldc)
			prof.WorkerEnd(w, bs)
		}(w, lo, hi)
	}
	wg.Wait()
	prof.LaunchEndNested(launched, ls)
}

//ucudnn:hotpath
func checkDims(transA, transB bool, m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic("blas: negative dimension")
	}
	arows, acols := m, k
	if transA {
		arows, acols = k, m
	}
	brows, bcols := k, n
	if transB {
		brows, bcols = n, k
	}
	if lda < max(1, acols) || ldb < max(1, bcols) || ldc < max(1, n) {
		panic("blas: bad leading dimension")
	}
	if arows > 0 && acols > 0 && len(a) < (arows-1)*lda+acols {
		panic("blas: A too short")
	}
	if brows > 0 && bcols > 0 && len(b) < (brows-1)*ldb+bcols {
		panic("blas: B too short")
	}
	if m > 0 && len(c) < (m-1)*ldc+n {
		panic("blas: C too short")
	}
}

//ucudnn:hotpath
func scaleC(m, n int, beta float32, c []float32, ldc int) {
	if beta == 1 {
		return
	}
	for i := 0; i < m; i++ {
		row := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] *= beta
			}
		}
	}
}

// sgemmRows computes rows [mLo, mHi) of C = alpha*op(A)*op(B) + beta*C
// with cache blocking: B panels are packed once per (j0, k0) block —
// hoisted out of the row-block loop — and beta is fused into the
// micro-kernel's store of the first k-block.
//
//ucudnn:hotpath
func sgemmRows(rec bool, transA, transB bool, mLo, mHi, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	var packA [mc * kc]float32
	var packB [kc * nc]float32
	// One continuous Enter/Next chain: every phase window ends exactly
	// where the next begins, so the whole walk is attributed with no
	// internal gaps (loop bookkeeping lands in the adjacent phase).
	var t int64
	if rec {
		t = prof.Enter()
	}
	for j0 := 0; j0 < n; j0 += nc {
		jb := min(nc, n-j0)
		for k0 := 0; k0 < k; k0 += kc {
			kb := min(kc, k-k0)
			packBPanels(packB[:], transB, b, ldb, k0, kb, j0, jb)
			if rec {
				t = prof.Next(phSgemmPack, t)
			}
			first := k0 == 0
			for i0 := mLo; i0 < mHi; i0 += mc {
				ib := min(mc, mHi-i0)
				packAPanels(packA[:], transA, a, lda, i0, ib, k0, kb, alpha)
				if rec {
					t = prof.Next(phSgemmPack, t)
				}
				kernelBlock(packA[:], packB[:], ib, jb, kb, first, beta, c, i0*ldc+j0, ldc)
				if rec {
					t = prof.Next(phSgemmKernel, t)
				}
			}
		}
	}
}

// sgemmPackedRows is sgemmRows over a pre-packed A (PackA layout): the
// A-pack is skipped entirely and panels are read at their global
// offsets. mLo must be a multiple of mr.
//
//ucudnn:hotpath
func sgemmPackedRows(rec bool, pa []float32, mLo, mHi, m, n, k int, transB bool, b []float32, ldb int, beta float32, c []float32, ldc int) {
	pm := ((m + mr - 1) / mr) * mr
	var packB [kc * nc]float32
	var t int64
	if rec {
		t = prof.Enter()
	}
	for j0 := 0; j0 < n; j0 += nc {
		jb := min(nc, n-j0)
		for k0 := 0; k0 < k; k0 += kc {
			kb := min(kc, k-k0)
			packBPanels(packB[:], transB, b, ldb, k0, kb, j0, jb)
			if rec {
				t = prof.Next(phSgemmPack, t)
			}
			first := k0 == 0
			for i0 := mLo; i0 < mHi; i0 += mc {
				ib := min(mc, mHi-i0)
				kernelBlock(pa[pm*k0+(i0/mr)*(kb*mr):], packB[:], ib, jb, kb, first, beta, c, i0*ldc+j0, ldc)
				if rec {
					t = prof.Next(phSgemmKernel, t)
				}
			}
		}
	}
}

// packBPanels packs op(B)[k0:k0+kb, j0:j0+jb] into column panels of nr:
// panel jp holds columns [jp*nr, jp*nr+nr) stored [kb][nr], zero-padded
// past jb so the micro-kernel never branches on column width.
//
//ucudnn:hotpath
func packBPanels(pack []float32, transB bool, b []float32, ldb int, k0, kb, j0, jb int) {
	for jt := 0; jt < jb; jt += nr {
		dst := pack[(jt/nr)*(kb*nr):]
		jw := min(nr, jb-jt)
		if !transB && jw == nr {
			for p := 0; p < kb; p++ {
				src := (*[nr]float32)(b[(k0+p)*ldb+j0+jt:])
				d := (*[nr]float32)(dst[p*nr:])
				d[0] = src[0]
				d[1] = src[1]
				d[2] = src[2]
				d[3] = src[3]
				d[4] = src[4]
				d[5] = src[5]
				d[6] = src[6]
				d[7] = src[7]
			}
		} else if !transB {
			for p := 0; p < kb; p++ {
				src := b[(k0+p)*ldb+j0+jt:]
				d := dst[p*nr : p*nr+nr]
				for j := 0; j < jw; j++ {
					d[j] = src[j]
				}
				for j := jw; j < nr; j++ {
					d[j] = 0
				}
			}
		} else {
			for p := 0; p < kb; p++ {
				d := dst[p*nr : p*nr+nr]
				for j := 0; j < jw; j++ {
					d[j] = b[(j0+jt+j)*ldb+(k0+p)]
				}
				for j := jw; j < nr; j++ {
					d[j] = 0
				}
			}
		}
	}
}

// packAPanels packs alpha * op(A)[i0:i0+ib, k0:k0+kb] into row panels of
// mr: panel ip holds rows [ip*mr, ip*mr+mr) stored [kb][mr], zero-padded
// past ib. The padded lanes make the micro-kernel's FMA body width-
// independent; alpha is fused here so the kernel never multiplies by it.
//
//ucudnn:hotpath
func packAPanels(pack []float32, transA bool, a []float32, lda int, i0, ib, k0, kb int, alpha float32) {
	for it := 0; it < ib; it += mr {
		dst := pack[(it/mr)*(kb*mr):]
		iw := min(mr, ib-it)
		if !transA {
			for i := 0; i < iw; i++ {
				src := a[(i0+it+i)*lda+k0:]
				for p := 0; p < kb; p++ {
					dst[p*mr+i] = alpha * src[p]
				}
			}
			for i := iw; i < mr; i++ {
				for p := 0; p < kb; p++ {
					dst[p*mr+i] = 0
				}
			}
		} else {
			for p := 0; p < kb; p++ {
				row := a[(k0+p)*lda+i0+it:]
				d := dst[p*mr : p*mr+mr]
				for i := 0; i < iw; i++ {
					d[i] = alpha * row[i]
				}
				for i := iw; i < mr; i++ {
					d[i] = 0
				}
			}
		}
	}
}

// kernelBlock walks the mr x nr register-tile grid of one (ib x jb) C
// block, multiplying packed A panels (base pa, panel stride kb*mr)
// against packed B panels. Each tile is accumulated from zero over the
// whole kb extent (AVX kernel when available, generic quarters
// otherwise — bitwise-identical), then stored once, fusing beta on the
// first k-block and masking the zero-padded edge lanes. Each C element's
// accumulation is a single strict k-order chain, so results do not
// depend on how rows are chunked across workers.
//
//ucudnn:hotpath
func kernelBlock(pa, pb []float32, ib, jb, kb int, first bool, beta float32, c []float32, off, ldc int) {
	var acc [mr * nr]float32
	for jt := 0; jt < jb; jt += nr {
		bp := pb[(jt/nr)*(kb*nr):]
		jw := min(nr, jb-jt)
		for it := 0; it < ib; it += mr {
			ap := pa[(it/mr)*(kb*mr):]
			if useAVX {
				sgemmTileAVX(&ap[0], &bp[0], kb, &acc)
			} else {
				sgemmTileGeneric(ap, bp, kb, &acc)
			}
			co := off + it*ldc + jt
			if ib-it >= mr && jw == nr {
				if !first || beta == 1 {
					for i := 0; i < mr; i++ {
						row := (*[nr]float32)(c[co+i*ldc:])
						av := (*[nr]float32)(acc[i*nr:])
						for j := 0; j < nr; j++ {
							row[j] += av[j]
						}
					}
				} else if beta == 0 {
					for i := 0; i < mr; i++ {
						row := (*[nr]float32)(c[co+i*ldc:])
						av := (*[nr]float32)(acc[i*nr:])
						for j := 0; j < nr; j++ {
							row[j] = av[j]
						}
					}
				} else {
					for i := 0; i < mr; i++ {
						row := (*[nr]float32)(c[co+i*ldc:])
						av := (*[nr]float32)(acc[i*nr:])
						for j := 0; j < nr; j++ {
							row[j] = beta*row[j] + av[j]
						}
					}
				}
				continue
			}
			iw := min(mr, ib-it)
			for i := 0; i < iw; i++ {
				row := c[co+i*ldc : co+i*ldc+jw]
				for j := 0; j < jw; j++ {
					v := acc[i*nr+j]
					if !first || beta == 1 {
						row[j] += v
					} else if beta == 0 {
						row[j] = v
					} else {
						row[j] = beta*row[j] + v
					}
				}
			}
		}
	}
}

// sgemmTileGeneric is the pure-Go form of sgemmTileAVX: one mr x nr tile
// accumulated from zero, computed as 2x4 quarters so the accumulators
// stay in the gc register allocator's 15 usable XMM registers. Every C
// element sees the same strict k-order mul-then-add chain as the AVX
// kernel, so the two paths are bitwise-identical.
//
//ucudnn:hotpath
func sgemmTileGeneric(ap, bp []float32, kb int, acc *[mr * nr]float32) {
	for ro := 0; ro < mr; ro += 2 {
		for co := 0; co < nr; co += 4 {
			var c00, c01, c02, c03 float32
			var c10, c11, c12, c13 float32
			qa, qb := ro, co
			for p := 0; p < kb; p++ {
				av := (*[2]float32)(ap[qa:])
				bv := (*[4]float32)(bp[qb:])
				a0, a1 := av[0], av[1]
				b0, b1 := bv[0], bv[1]
				c00 += a0 * b0
				c10 += a1 * b0
				c01 += a0 * b1
				c11 += a1 * b1
				b2, b3 := bv[2], bv[3]
				c02 += a0 * b2
				c12 += a1 * b2
				c03 += a0 * b3
				c13 += a1 * b3
				qa += mr
				qb += nr
			}
			acc[ro*nr+co], acc[ro*nr+co+1], acc[ro*nr+co+2], acc[ro*nr+co+3] = c00, c01, c02, c03
			acc[(ro+1)*nr+co], acc[(ro+1)*nr+co+1], acc[(ro+1)*nr+co+2], acc[(ro+1)*nr+co+3] = c10, c11, c12, c13
		}
	}
}

// Saxpy computes y += alpha * x.
//
//ucudnn:hotpath
func Saxpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("blas: Saxpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Sdot returns the dot product of x and y.
//
//ucudnn:hotpath
func Sdot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("blas: Sdot length mismatch")
	}
	var s float32
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
