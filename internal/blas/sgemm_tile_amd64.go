//go:build amd64

package blas

// sgemmTileAVX is the AVX form of sgemmTileGeneric: one 4x8 C tile
// accumulated in YMM registers, bitwise-identical to the generic tile
// (see sgemm_tile_amd64.s).
//
//go:noescape
func sgemmTileAVX(pa, pb *float32, kb int, acc *[mr * nr]float32)

//go:noescape
func cpuidLow(arg1, arg2 uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// useAVX reports whether the CPU and OS support AVX (CPUID feature bit
// plus OSXSAVE with YMM state enabled). Decided once at init; the tile
// walk branches on it per tile.
var useAVX = func() bool {
	_, _, ecx, _ := cpuidLow(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	eax, _ := xgetbv0()
	return eax&6 == 6 // XMM and YMM state managed by the OS
}()
