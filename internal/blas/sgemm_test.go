package blas

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive reference GEMM: C = alpha*op(A)*op(B) + beta*C.
func refGemm(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	at := func(i, p int) float32 {
		if transA {
			return a[p*lda+i]
		}
		return a[i*lda+p]
	}
	bt := func(p, j int) float32 {
		if transB {
			return b[j*ldb+p]
		}
		return b[p*ldb+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			c[i*ldc+j] = alpha*s + beta*c[i*ldc+j]
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := float64(a[i] - b[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func checkGemmCase(t *testing.T, transA, transB bool, m, n, k int, alpha, beta float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*1000 + n*100 + k)))
	lda, ldb, ldc := k, n, n
	if transA {
		lda = m
	}
	if transB {
		ldb = k
	}
	arows, brows := m, k
	if transA {
		arows = k
	}
	if transB {
		brows = n
	}
	a := randSlice(rng, arows*lda)
	b := randSlice(rng, brows*ldb)
	c1 := randSlice(rng, m*ldc)
	c2 := append([]float32(nil), c1...)
	Sgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c1, ldc)
	refGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c2, ldc)
	if d := maxDiff(c1, c2); d > 1e-4*float64(k+1) {
		t.Fatalf("tA=%v tB=%v m=%d n=%d k=%d alpha=%v beta=%v: maxdiff %g", transA, transB, m, n, k, alpha, beta, d)
	}
}

func TestSgemmSmall(t *testing.T) {
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			checkGemmCase(t, ta, tb, 3, 4, 5, 1, 0)
			checkGemmCase(t, ta, tb, 1, 1, 1, 2, 0.5)
			checkGemmCase(t, ta, tb, 7, 2, 9, -1, 1)
		}
	}
}

func TestSgemmBlockBoundaries(t *testing.T) {
	// Exercise sizes straddling the cache-blocking parameters.
	for _, m := range []int{mc - 1, mc, mc + 1} {
		for _, k := range []int{kc - 1, kc, kc + 1} {
			checkGemmCase(t, false, false, m, 33, k, 1, 0)
		}
	}
	checkGemmCase(t, false, false, 5, nc+5, 5, 1, 0)
	checkGemmCase(t, false, false, 5, nc-1, kc+3, 1, 0)
}

// TestSgemmRegisterTileBoundaries covers every remainder class of the
// mr x nr register tiling (±1 around multiples of mr, nr, and kc) for
// all transpose combinations and the three beta fast paths — the edge
// lanes the micro-kernel masks out must not leak into C.
func TestSgemmRegisterTileBoundaries(t *testing.T) {
	dims := []int{mr - 1, mr, mr + 1, 2*mr + 1, nr - 1, nr, nr + 1, 3*nr - 1}
	ks := []int{1, mr, kc - 1, kc, kc + 1}
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			for _, beta := range []float32{0, 1, 0.75} {
				for _, m := range dims {
					checkGemmCase(t, ta, tb, m, 2*nr+1, 9, 1.5, beta)
				}
				for _, k := range ks {
					checkGemmCase(t, ta, tb, mr+1, nr+2, k, 1, beta)
				}
			}
		}
	}
}

func packACopy(transA bool, m, k int, alpha float32, a []float32, lda int) []float32 {
	pa := make([]float32, PackAFloats(m, k))
	PackA(pa, transA, m, k, alpha, a, lda)
	return pa
}

// TestSgemmPackedAMatchesSgemm: the pack-once path must be bit-identical
// to the general entry point (same kernels, same accumulation order) on
// shapes covering panel remainders and both B orientations.
func TestSgemmPackedAMatchesSgemm(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		transA, transB bool
		m, n, k        int
		alpha, beta    float32
	}{
		{false, false, 32, 784, 144, 1.25, 0},
		{true, false, 144, 784, 32, 1, 0.75},
		{false, true, mr + 1, nr + 3, kc + 2, 0.5, 1},
		{false, false, mc + mr - 1, 2*nr + 1, 7, 1, 0},
		{true, true, 5, 3, 9, -1, 0.25},
	} {
		lda, ldb := tc.k, tc.n
		if tc.transA {
			lda = tc.m
		}
		if tc.transB {
			ldb = tc.k
		}
		arows, brows := tc.m, tc.k
		if tc.transA {
			arows = tc.k
		}
		if tc.transB {
			brows = tc.n
		}
		a := randSlice(rng, arows*lda)
		b := randSlice(rng, brows*ldb)
		c1 := randSlice(rng, tc.m*tc.n)
		c2 := append([]float32(nil), c1...)
		pa := packACopy(tc.transA, tc.m, tc.k, tc.alpha, a, lda)
		for _, workers := range []int{1, 3} {
			copy(c1, c2)
			SgemmPackedA(workers, pa, tc.transB, tc.m, tc.n, tc.k, b, ldb, tc.beta, c1, tc.n)
			want := append([]float32(nil), c2...)
			Sgemm(tc.transA, tc.transB, tc.m, tc.n, tc.k, tc.alpha, a, lda, b, ldb, tc.beta, want, tc.n)
			for i := range c1 {
				if c1[i] != want[i] {
					t.Fatalf("%+v workers=%d: packed path diverges at %d: %v vs %v", tc, workers, i, c1[i], want[i])
				}
			}
		}
	}
}

// TestSgemmWorkerCountInvariance: identical bits at every worker count,
// for both the general and the packed-A entry points.
func TestSgemmWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n, k := 61, 95, 131
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	c0 := randSlice(rng, m*n)
	var ref []float32
	pa := packACopy(false, m, k, 1.5, a, k)
	for _, workers := range []int{1, 2, 3, 7, 16} {
		c := append([]float32(nil), c0...)
		SgemmWorkers(workers, false, false, m, n, k, 1.5, a, k, b, n, 0.75, c, n)
		if ref == nil {
			ref = c
		} else {
			for i := range c {
				if c[i] != ref[i] {
					t.Fatalf("workers=%d: elem %d differs: %v vs %v", workers, i, c[i], ref[i])
				}
			}
		}
		cp := append([]float32(nil), c0...)
		SgemmPackedA(workers, pa, false, m, n, k, b, n, 0.75, cp, n)
		for i := range cp {
			if cp[i] != ref[i] {
				t.Fatalf("packed workers=%d: elem %d differs: %v vs %v", workers, i, cp[i], ref[i])
			}
		}
	}
}

// The packed serial paths are on the engine's zero-allocation steady
// state: repacking and multiplying must not allocate.
func TestSgemmZeroAllocSteadyState(t *testing.T) {
	m, n, k := 32, 784, 144
	rng := rand.New(rand.NewSource(3))
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	c := make([]float32, m*n)
	pa := make([]float32, PackAFloats(m, k))
	if avg := testing.AllocsPerRun(10, func() {
		PackA(pa, false, m, k, 1, a, k)
		SgemmPackedA(1, pa, false, m, n, k, b, n, 0, c, n)
	}); avg != 0 {
		t.Fatalf("packed path allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() {
		SgemmWorkers(1, false, false, m, n, k, 1, a, k, b, n, 0, c, n)
	}); avg != 0 {
		t.Fatalf("serial Sgemm allocates %v/op, want 0", avg)
	}
}

func TestSgemmParallelLarge(t *testing.T) {
	// Big enough to take the multi-goroutine path.
	checkGemmCase(t, false, false, 130, 90, 70, 1.5, 0.25)
	checkGemmCase(t, true, false, 96, 128, 64, 1, 1)
	checkGemmCase(t, false, true, 64, 64, 200, 0.5, -1)
}

func TestSgemmBetaZeroOverwritesNaNFreeGarbage(t *testing.T) {
	// beta=0 must overwrite C regardless of prior contents.
	m, n, k := 4, 4, 4
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range c {
		c[i] = 1e30
	}
	Sgemm(false, false, m, n, k, 1, a, k, b, n, 0, c, n)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("c[%d] = %v, want 0", i, v)
		}
	}
}

func TestSgemmAlphaZeroSkipsProduct(t *testing.T) {
	m, n, k := 3, 3, 3
	a := randSlice(rand.New(rand.NewSource(1)), m*k)
	b := randSlice(rand.New(rand.NewSource(2)), k*n)
	c := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	Sgemm(false, false, m, n, k, 0, a, k, b, n, 2, c, n)
	want := []float32{2, 4, 6, 8, 10, 12, 14, 16, 18}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestSgemmZeroK(t *testing.T) {
	c := []float32{1, 2, 3, 4}
	Sgemm(false, false, 2, 2, 0, 1, nil, 1, nil, 2, 0.5, c, 2)
	want := []float32{0.5, 1, 1.5, 2}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("k=0: c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestSgemmPanicsOnBadDims(t *testing.T) {
	cases := []func(){
		func() { Sgemm(false, false, -1, 2, 2, 1, nil, 2, nil, 2, 0, nil, 2) },
		func() {
			Sgemm(false, false, 2, 2, 2, 1, make([]float32, 3), 2, make([]float32, 4), 2, 0, make([]float32, 4), 2)
		},
		func() {
			Sgemm(false, false, 2, 2, 2, 1, make([]float32, 4), 1, make([]float32, 4), 2, 0, make([]float32, 4), 2)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: Sgemm agrees with the naive reference on random shapes.
func TestSgemmQuick(t *testing.T) {
	f := func(m8, n8, k8 uint8, ta, tb bool, seed int64) bool {
		m := int(m8%40) + 1
		n := int(n8%40) + 1
		k := int(k8%40) + 1
		rng := rand.New(rand.NewSource(seed))
		lda, ldb := k, n
		if ta {
			lda = m
		}
		if tb {
			ldb = k
		}
		arows, brows := m, k
		if ta {
			arows = k
		}
		if tb {
			brows = n
		}
		a := randSlice(rng, arows*lda)
		b := randSlice(rng, brows*ldb)
		c1 := randSlice(rng, m*n)
		c2 := append([]float32(nil), c1...)
		Sgemm(ta, tb, m, n, k, 1.25, a, lda, b, ldb, 0.75, c1, n)
		refGemm(ta, tb, m, n, k, 1.25, a, lda, b, ldb, 0.75, c2, n)
		return maxDiff(c1, c2) <= 1e-4*float64(k+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSaxpySdot(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	Saxpy(2, x, y)
	want := []float32{6, 9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Saxpy: y[%d]=%v", i, y[i])
		}
	}
	if d := Sdot(x, []float32{1, 1, 1}); d != 6 {
		t.Fatalf("Sdot = %v", d)
	}
}

func benchSgemm(b *testing.B, m, n, k int) {
	rng := rand.New(rand.NewSource(7))
	a := randSlice(rng, m*k)
	bm := randSlice(rng, k*n)
	c := make([]float32, m*n)
	b.SetBytes(int64(2) * int64(m) * int64(n) * int64(k) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sgemm(false, false, m, n, k, 1, a, k, bm, n, 0, c, n)
	}
}

func BenchmarkSgemm256(b *testing.B) { benchSgemm(b, 256, 256, 256) }

// The shapes conv actually emits are nothing like square: the forward
// im2col GEMM is skinny (m = K output channels, n = output pixels), and
// the Winograd spectral GEMM is a small panel. Track both so benchdiff
// catches regressions on the shapes that matter.
func BenchmarkSgemmSkinny32x784x144(b *testing.B) { benchSgemm(b, 32, 784, 144) }

func BenchmarkSgemmPanel64x196x16(b *testing.B) { benchSgemm(b, 64, 196, 16) }

// BenchmarkSgemmPackedA measures the conv forward inner loop once the
// weight matrix has been packed per Run: the A-pack cost disappears from
// the per-sample path.
func BenchmarkSgemmPackedA32x784x144(b *testing.B) {
	m, n, k := 32, 784, 144
	rng := rand.New(rand.NewSource(7))
	a := randSlice(rng, m*k)
	bm := randSlice(rng, k*n)
	c := make([]float32, m*n)
	pa := make([]float32, PackAFloats(m, k))
	PackA(pa, false, m, k, 1, a, k)
	b.SetBytes(int64(2) * int64(m) * int64(n) * int64(k) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SgemmPackedA(1, pa, false, m, n, k, bm, n, 0, c, n)
	}
}

func TestSgemmDegenerateDims(t *testing.T) {
	// m==0 and n==0 are no-ops that must not touch C.
	c := []float32{1, 2, 3, 4}
	Sgemm(false, false, 0, 2, 2, 1, nil, 2, make([]float32, 4), 2, 0, c, 2)
	Sgemm(false, false, 2, 0, 2, 1, make([]float32, 4), 2, nil, 1, 0, c, 1)
	for i, v := range []float32{1, 2, 3, 4} {
		if c[i] != v {
			t.Fatalf("degenerate GEMM touched C[%d]", i)
		}
	}
}

func TestSaxpyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Saxpy(1, []float32{1}, []float32{1, 2})
}

func TestSdotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sdot([]float32{1}, []float32{1, 2})
}
