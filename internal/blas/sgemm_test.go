package blas

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive reference GEMM: C = alpha*op(A)*op(B) + beta*C.
func refGemm(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	at := func(i, p int) float32 {
		if transA {
			return a[p*lda+i]
		}
		return a[i*lda+p]
	}
	bt := func(p, j int) float32 {
		if transB {
			return b[j*ldb+p]
		}
		return b[p*ldb+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			c[i*ldc+j] = alpha*s + beta*c[i*ldc+j]
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := float64(a[i] - b[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func checkGemmCase(t *testing.T, transA, transB bool, m, n, k int, alpha, beta float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*1000 + n*100 + k)))
	lda, ldb, ldc := k, n, n
	if transA {
		lda = m
	}
	if transB {
		ldb = k
	}
	arows, brows := m, k
	if transA {
		arows = k
	}
	if transB {
		brows = n
	}
	a := randSlice(rng, arows*lda)
	b := randSlice(rng, brows*ldb)
	c1 := randSlice(rng, m*ldc)
	c2 := append([]float32(nil), c1...)
	Sgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c1, ldc)
	refGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c2, ldc)
	if d := maxDiff(c1, c2); d > 1e-4*float64(k+1) {
		t.Fatalf("tA=%v tB=%v m=%d n=%d k=%d alpha=%v beta=%v: maxdiff %g", transA, transB, m, n, k, alpha, beta, d)
	}
}

func TestSgemmSmall(t *testing.T) {
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			checkGemmCase(t, ta, tb, 3, 4, 5, 1, 0)
			checkGemmCase(t, ta, tb, 1, 1, 1, 2, 0.5)
			checkGemmCase(t, ta, tb, 7, 2, 9, -1, 1)
		}
	}
}

func TestSgemmBlockBoundaries(t *testing.T) {
	// Exercise sizes straddling the blocking parameters.
	sizes := []int{blockM - 1, blockM, blockM + 1, blockK + 3, blockN + 5}
	for _, m := range []int{blockM - 1, blockM + 1} {
		for _, k := range []int{blockK - 1, blockK + 1} {
			checkGemmCase(t, false, false, m, 33, k, 1, 0)
		}
	}
	checkGemmCase(t, false, false, 5, sizes[4], 5, 1, 0)
}

func TestSgemmParallelLarge(t *testing.T) {
	// Big enough to take the multi-goroutine path.
	checkGemmCase(t, false, false, 130, 90, 70, 1.5, 0.25)
	checkGemmCase(t, true, false, 96, 128, 64, 1, 1)
	checkGemmCase(t, false, true, 64, 64, 200, 0.5, -1)
}

func TestSgemmBetaZeroOverwritesNaNFreeGarbage(t *testing.T) {
	// beta=0 must overwrite C regardless of prior contents.
	m, n, k := 4, 4, 4
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range c {
		c[i] = 1e30
	}
	Sgemm(false, false, m, n, k, 1, a, k, b, n, 0, c, n)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("c[%d] = %v, want 0", i, v)
		}
	}
}

func TestSgemmAlphaZeroSkipsProduct(t *testing.T) {
	m, n, k := 3, 3, 3
	a := randSlice(rand.New(rand.NewSource(1)), m*k)
	b := randSlice(rand.New(rand.NewSource(2)), k*n)
	c := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	Sgemm(false, false, m, n, k, 0, a, k, b, n, 2, c, n)
	want := []float32{2, 4, 6, 8, 10, 12, 14, 16, 18}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestSgemmZeroK(t *testing.T) {
	c := []float32{1, 2, 3, 4}
	Sgemm(false, false, 2, 2, 0, 1, nil, 1, nil, 2, 0.5, c, 2)
	want := []float32{0.5, 1, 1.5, 2}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("k=0: c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestSgemmPanicsOnBadDims(t *testing.T) {
	cases := []func(){
		func() { Sgemm(false, false, -1, 2, 2, 1, nil, 2, nil, 2, 0, nil, 2) },
		func() {
			Sgemm(false, false, 2, 2, 2, 1, make([]float32, 3), 2, make([]float32, 4), 2, 0, make([]float32, 4), 2)
		},
		func() {
			Sgemm(false, false, 2, 2, 2, 1, make([]float32, 4), 1, make([]float32, 4), 2, 0, make([]float32, 4), 2)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: Sgemm agrees with the naive reference on random shapes.
func TestSgemmQuick(t *testing.T) {
	f := func(m8, n8, k8 uint8, ta, tb bool, seed int64) bool {
		m := int(m8%40) + 1
		n := int(n8%40) + 1
		k := int(k8%40) + 1
		rng := rand.New(rand.NewSource(seed))
		lda, ldb := k, n
		if ta {
			lda = m
		}
		if tb {
			ldb = k
		}
		arows, brows := m, k
		if ta {
			arows = k
		}
		if tb {
			brows = n
		}
		a := randSlice(rng, arows*lda)
		b := randSlice(rng, brows*ldb)
		c1 := randSlice(rng, m*n)
		c2 := append([]float32(nil), c1...)
		Sgemm(ta, tb, m, n, k, 1.25, a, lda, b, ldb, 0.75, c1, n)
		refGemm(ta, tb, m, n, k, 1.25, a, lda, b, ldb, 0.75, c2, n)
		return maxDiff(c1, c2) <= 1e-4*float64(k+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSaxpySdot(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	Saxpy(2, x, y)
	want := []float32{6, 9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Saxpy: y[%d]=%v", i, y[i])
		}
	}
	if d := Sdot(x, []float32{1, 1, 1}); d != 6 {
		t.Fatalf("Sdot = %v", d)
	}
}

func BenchmarkSgemm256(b *testing.B) {
	n := 256
	rng := rand.New(rand.NewSource(7))
	a := randSlice(rng, n*n)
	bm := randSlice(rng, n*n)
	c := make([]float32, n*n)
	b.SetBytes(int64(2 * n * n * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sgemm(false, false, n, n, n, 1, a, n, bm, n, 0, c, n)
	}
}

func TestSgemmDegenerateDims(t *testing.T) {
	// m==0 and n==0 are no-ops that must not touch C.
	c := []float32{1, 2, 3, 4}
	Sgemm(false, false, 0, 2, 2, 1, nil, 2, make([]float32, 4), 2, 0, c, 2)
	Sgemm(false, false, 2, 0, 2, 1, make([]float32, 4), 2, nil, 1, 0, c, 1)
	for i, v := range []float32{1, 2, 3, 4} {
		if c[i] != v {
			t.Fatalf("degenerate GEMM touched C[%d]", i)
		}
	}
}

func TestSaxpyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Saxpy(1, []float32{1}, []float32{1, 2})
}

func TestSdotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sdot([]float32{1}, []float32{1, 2})
}
