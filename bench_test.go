// Package ucudnn_test hosts the repository-level benchmark harness: one
// testing.B target per paper table/figure (regenerating the experiment on
// the simulated device model), plus micro-benchmarks of the real CPU
// convolution kernels and the optimizer machinery.
//
// Run with:
//
//	go test -bench=. -benchmem
package ucudnn_test

import (
	"io"
	"testing"

	"ucudnn/internal/bench"
	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/ilp"
	"ucudnn/internal/lp"
	"ucudnn/internal/tensor"
)

func benchCfg(batch int) bench.Config {
	return bench.Config{Device: device.P100, Batch: batch, Iters: 1, Out: io.Discard}
}

// runExperiment executes a bench experiment b.N times.
func runExperiment(b *testing.B, name string, batch int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(name, benchCfg(batch)); err != nil {
			b.Fatal(err)
		}
	}
}

// Each of the following regenerates one figure/table of the paper
// (reduced batch sizes keep bench iterations tractable; the cmd/ucudnn-
// bench tool runs them at paper scale).

func BenchmarkFig1(b *testing.B)    { runExperiment(b, "fig1", 64) }
func BenchmarkFig8(b *testing.B)    { runExperiment(b, "fig8", 64) }
func BenchmarkFig9(b *testing.B)    { runExperiment(b, "fig9", 128) }
func BenchmarkFig10(b *testing.B)   { runExperiment(b, "fig10", 32) }
func BenchmarkFig11(b *testing.B)   { runExperiment(b, "fig11", 16) }
func BenchmarkFig12(b *testing.B)   { runExperiment(b, "fig12", 16) }
func BenchmarkFig13(b *testing.B)   { runExperiment(b, "fig13", 16) }
func BenchmarkFig14(b *testing.B)   { runExperiment(b, "fig14", 64) }
func BenchmarkTable1(b *testing.B)  { runExperiment(b, "table1", 0) }
func BenchmarkOptTime(b *testing.B) { runExperiment(b, "opttime", 32) }

// BenchmarkOptimizerWR measures the WR dynamic program (benchmarking +
// DP) on conv2 per policy — the paper's §IV-B optimization-cost metric.
func BenchmarkOptimizerWR(b *testing.B) {
	for _, pol := range core.Policies {
		b.Run(pol.String(), func(b *testing.B) {
			k := core.Kernel{Op: conv.Forward, Shape: bench.Conv2(256)}
			for i := 0; i < b.N; i++ {
				// A fresh bencher each iteration so the cache doesn't hide
				// the benchmarking cost.
				bc := core.NewBencher(cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend), nil, 1)
				if _, err := core.OptimizeWR(bc, k, 64<<20, pol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizerWD measures the full WD pipeline (desirable sets +
// ILP) over AlexNet's five forward kernels.
func BenchmarkOptimizerWD(b *testing.B) {
	shapes := []tensor.ConvShape{
		bench.Conv2(64),
		{In: tensor.Shape{N: 64, C: 192, H: 13, W: 13}, Filt: tensor.Filter{K: 384, C: 192, R: 3, S: 3},
			Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}},
		{In: tensor.Shape{N: 64, C: 384, H: 13, W: 13}, Filt: tensor.Filter{K: 256, C: 384, R: 3, S: 3},
			Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1}},
	}
	var kernels []core.Kernel
	for _, cs := range shapes {
		for _, op := range conv.Ops {
			kernels = append(kernels, core.Kernel{Op: op, Shape: cs})
		}
	}
	for i := 0; i < b.N; i++ {
		bc := core.NewBencher(cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend), nil, 1)
		if _, err := core.OptimizeWD(bc, kernels, 120<<20, core.PolicyPowerOfTwo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernel measures the real CPU implementations of each forward
// algorithm on a small 3x3 problem (throughput in flops via b.SetBytes is
// not meaningful here; ns/op comparisons are).
func BenchmarkKernel(b *testing.B) {
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: 4, C: 16, H: 28, W: 28},
		Filt:   tensor.Filter{K: 32, C: 16, R: 3, S: 3},
		Params: tensor.ConvParams{PadH: 1, PadW: 1, StrideH: 1, StrideW: 1},
	}
	x := tensor.NewShaped(cs.In)
	w := tensor.NewFilter(32, 16, 3, 3)
	y := tensor.NewShaped(cs.OutShape())
	for _, algo := range conv.AlgosFor(conv.Forward) {
		if !conv.Supported(conv.Forward, algo, cs) {
			continue
		}
		wsBytes, _ := conv.Workspace(conv.Forward, algo, cs)
		ws := make([]float32, (wsBytes+3)/4)
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := conv.Run(conv.Forward, algo, cs, x, w, y, 1, 0, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkILPResNet50Scale measures the branch & bound on a WD-sized
// multiple-choice knapsack (the paper reports 562 variables in 5.46 ms
// with GLPK).
func BenchmarkILPResNet50Scale(b *testing.B) {
	// 48 groups x ~10 Pareto options each.
	var c, wsRow []float64
	var groups [][]int
	idx := 0
	for g := 0; g < 48; g++ {
		var ids []int
		for o := 0; o < 10; o++ {
			c = append(c, 10.0/(1+0.2*float64(o)))
			wsRow = append(wsRow, float64(o*12))
			ids = append(ids, idx)
			idx++
		}
		groups = append(groups, ids)
	}
	n := len(c)
	prob := &ilp.Problem{
		LP: lp.Problem{
			C:   c,
			A:   [][]float64{wsRow},
			B:   []float64{900},
			Rel: []lp.Relation{lp.LE},
		},
		Binary: make([]bool, n),
	}
	for i := range prob.Binary {
		prob.Binary[i] = true
	}
	for _, ids := range groups {
		row := make([]float64, n)
		for _, id := range ids {
			row[id] = 1
		}
		prob.LP.A = append(prob.LP.A, row)
		prob.LP.B = append(prob.LP.B, 1)
		prob.LP.Rel = append(prob.LP.Rel, lp.EQ)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ilp.Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesirableSet measures the Pareto-front DP alone.
func BenchmarkDesirableSet(b *testing.B) {
	for _, pol := range []core.Policy{core.PolicyPowerOfTwo, core.PolicyAll} {
		b.Run(pol.String(), func(b *testing.B) {
			bc := core.NewBencher(cudnn.NewHandle(device.P100, cudnn.ModelOnlyBackend), nil, 1)
			k := core.Kernel{Op: conv.Forward, Shape: bench.Conv2(256)}
			bc.PerfsForSizes(k, pol.CandidateSizes(256)) // pre-warm the cache
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.DesirableSet(bc, k, 120<<20, pol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation regenerates the design-choice ablations
// (Pareto-pruning reduction, WD kernel dedup, cache reuse).
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation", 64) }

// BenchmarkScaling regenerates the data-parallel extension experiment.
func BenchmarkScaling(b *testing.B) { runExperiment(b, "scaling", 32) }

// BenchmarkConcurrency regenerates the Inception multi-stream extension.
func BenchmarkConcurrency(b *testing.B) { runExperiment(b, "concurrency", 32) }
