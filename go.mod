module ucudnn

go 1.22
