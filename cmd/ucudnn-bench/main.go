// Command ucudnn-bench regenerates the paper's tables and figures on the
// simulated device models.
//
// Usage:
//
//	ucudnn-bench -exp fig10 [-device p100] [-batch 256] [-iters 3] [-csv out.csv]
//	ucudnn-bench -exp all -metrics metrics.prom -trace trace.json
//	ucudnn-bench -exp fig10 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments: fig1 fig8 fig9 fig10 fig11 fig12 fig13 fig14 table1
// opttime summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ucudnn/internal/bench"
	"ucudnn/internal/core"
	"ucudnn/internal/debugserver"
	"ucudnn/internal/device"
	"ucudnn/internal/faults"
	"ucudnn/internal/flight"
	"ucudnn/internal/obs"
	"ucudnn/internal/prof"
	"ucudnn/internal/trace"
)

func main() {
	exp := flag.String("exp", "summary", "experiment name or 'all' ("+strings.Join(bench.Names(), ", ")+")")
	dev := flag.String("device", "p100", "device: k80, p100, v100")
	batch := flag.Int("batch", 0, "override mini-batch size (0 = experiment default)")
	iters := flag.Int("iters", 3, "timed iterations")
	csvPath := flag.String("csv", "", "also write CSV rows to this file")
	metricsPath := flag.String("metrics", "", "write cumulative µ-cuDNN metrics at exit (\"-\" for stdout, .prom for Prometheus)")
	tracePath := flag.String("trace", "", "write a Chrome trace of every timed run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run for go tool pprof")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit for go tool pprof")
	faultSpec := flag.String("faults", "", "arm a fault-injection schedule, e.g. \"ucudnn_fp_convolve=nth:3;ucudnn_fp_arena_grow=every:2,shrink=4\"")
	profilePath := flag.String("profile", "", "write a per-phase cost-attribution report at exit (\"-\" for a table on stdout, else JSON)")
	debugAddr := flag.String("debug-addr", os.Getenv("UCUDNN_DEBUG_ADDR"),
		"serve /debug/ucudnn/ endpoints on this address, e.g. localhost:6060 (default $UCUDNN_DEBUG_ADDR)")
	flag.Parse()
	flight.DumpOnSignal() // SIGQUIT dumps a flight-recorder snapshot to stderr

	d, err := device.ByName(*dev)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reportFaults := func() {}
	if *faultSpec != "" {
		freg, err := faults.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		faults.Install(freg)
		// Disarm and print the fired shots, so any failure under injection
		// is reproducible from the output alone; called on both the error
		// exit and the normal one (os.Exit skips defers).
		reportFaults = func() {
			faults.Install(nil)
			fmt.Fprintf(os.Stderr, "faults: schedule %q fired [%s]\n", freg.String(), freg.ShotLog())
		}
	}
	defer reportFaults()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}
	cfg := bench.Config{Device: d, Batch: *batch, Iters: *iters, Out: os.Stdout}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.CSV = f
	}
	if *metricsPath != "" || *debugAddr != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	if *profilePath != "" {
		prof.Enable()
		prof.SetMetrics(cfg.Metrics)
		defer prof.Disable()
	}
	if *tracePath != "" {
		cfg.Trace = trace.New()
	}
	if *debugAddr != "" {
		srv, err := debugserver.Start(*debugAddr, cfg.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ucudnn/\n", srv.Addr())
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.Names()
	}
	for _, name := range names {
		if err := bench.Run(name, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			reportFaults()
			os.Exit(1)
		}
	}
	if err := core.WriteProfileFile(*profilePath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if cfg.Metrics != nil && *metricsPath != "" {
		if err := cfg.Metrics.WriteFile(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if cfg.Trace != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := cfg.Trace.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
