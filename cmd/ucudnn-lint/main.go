// Command ucudnn-lint runs the internal/analysis suite (detlint,
// hotpath, wsfloor, metricname — see DESIGN.md "Static analysis") over
// the repository and exits non-zero on any finding.
//
// Usage:
//
//	ucudnn-lint [-analyzers detlint,wsfloor] [package patterns]
//
// Patterns are directories relative to the current module, with the
// usual /... suffix for recursion; the default is ./... . Findings can
// be suppressed per line with a justified //ucudnn:allow directive.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ucudnn/internal/analysis"
)

func main() {
	var list string
	flag.StringVar(&list, "analyzers", "", "comma-separated analyzer subset (default: the full suite)")
	flag.Parse()

	analyzers, err := analysis.ByName(list)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucudnn-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucudnn-lint:", err)
		os.Exit(2)
	}

	moduleRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucudnn-lint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(moduleRoot, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ucudnn-lint:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucudnn-lint:", err)
			os.Exit(2)
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucudnn-lint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "ucudnn-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// expand turns package patterns into a sorted list of directories that
// contain non-test Go files. testdata, vendor and hidden directories
// are skipped, matching the go tool's pattern semantics.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			recursive = true
			p = rest
			if p == "." || p == "" {
				p = "."
			}
		}
		if !recursive {
			add(filepath.Clean(p))
			continue
		}
		err := filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != p && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
