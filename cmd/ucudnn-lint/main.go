// Command ucudnn-lint runs the internal/analysis suite (see DESIGN.md
// "Static analysis") over the repository and exits non-zero on any
// finding. All matched packages are loaded into one program, so the
// interprocedural analyzers (hotpathcall, atomiclint, lockorder) see
// cross-package call chains, not per-package fragments.
//
// Usage:
//
//	ucudnn-lint [-analyzers detlint,wsfloor] [-json] [-audit-allows] [package patterns]
//
// Patterns are directories relative to the current module, with the
// usual /... suffix for recursion; the default is ./... . Findings can
// be suppressed per line with a justified //ucudnn:allow directive.
//
// Flags:
//
//	-json          emit findings (and allows) as JSON on stdout, for CI
//	               artifacts and tooling
//	-audit-allows  list every //ucudnn:allow directive with its
//	               justification and whether it still suppresses a
//	               finding; stale directives are failures
//
// Exit codes: 0 clean; 1 findings (or stale allows under
// -audit-allows); 2 load or type errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ucudnn/internal/analysis"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list        string
		jsonOut     bool
		auditAllows bool
	)
	flag.StringVar(&list, "analyzers", "", "comma-separated analyzer subset (default: the full suite)")
	flag.BoolVar(&jsonOut, "json", false, "emit findings as JSON on stdout")
	flag.BoolVar(&auditAllows, "audit-allows", false, "audit //ucudnn:allow directives; stale ones fail")
	flag.Parse()

	analyzers, err := analysis.ByName(list)
	if err != nil {
		return fail(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		return fail(err)
	}

	moduleRoot, err := findModuleRoot()
	if err != nil {
		return fail(err)
	}
	loader, err := analysis.NewLoader(moduleRoot, "")
	if err != nil {
		return fail(err)
	}

	// One loader, one program: type identity holds across packages, so
	// the call graph resolves cross-package edges exactly.
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return fail(err)
		}
		pkgs = append(pkgs, pkg)
	}

	res, err := analysis.AnalyzeProgram(analysis.NewProgram(pkgs), analyzers)
	if err != nil {
		return fail(err)
	}

	// An allow naming an analyzer that did not run cannot be judged
	// stale on this run; restrict the audit to the selected set.
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	var stale []analysis.Allow
	for _, al := range res.Allows {
		if selected[al.Analyzer] && !al.Used {
			stale = append(stale, al)
		}
	}

	cwd, _ := os.Getwd()
	if jsonOut {
		emitJSON(cwd, res, stale, auditAllows)
	} else if auditAllows {
		printAudit(cwd, res, stale)
	} else {
		for _, d := range res.Diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}

	switch {
	case len(res.Diags) > 0:
		fmt.Fprintf(os.Stderr, "ucudnn-lint: %d finding(s)\n", len(res.Diags))
		return exitFindings
	case auditAllows && len(stale) > 0:
		fmt.Fprintf(os.Stderr, "ucudnn-lint: %d stale allow directive(s)\n", len(stale))
		return exitFindings
	}
	return exitClean
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "ucudnn-lint:", err)
	return exitError
}

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonAllow is one suppression directive in -json output.
type jsonAllow struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Analyzer      string `json:"analyzer"`
	Justification string `json:"justification"`
	Used          bool   `json:"used"`
}

// jsonReport is the -json document.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Allows   []jsonAllow   `json:"allows"`
	Stale    int           `json:"stale_allows"`
}

func emitJSON(cwd string, res *analysis.Result, stale []analysis.Allow, audit bool) {
	rep := jsonReport{Findings: []jsonFinding{}, Allows: []jsonAllow{}, Stale: len(stale)}
	for _, d := range res.Diags {
		rep.Findings = append(rep.Findings, jsonFinding{
			File:     relPath(cwd, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	for _, al := range res.Allows {
		rep.Allows = append(rep.Allows, jsonAllow{
			File:          relPath(cwd, al.Pos.Filename),
			Line:          al.Pos.Line,
			Analyzer:      al.Analyzer,
			Justification: al.Justification,
			Used:          al.Used,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

func printAudit(cwd string, res *analysis.Result, stale []analysis.Allow) {
	staleAt := map[string]bool{}
	for _, al := range stale {
		staleAt[fmt.Sprintf("%s:%d", al.Pos.Filename, al.Pos.Line)] = true
	}
	for _, al := range res.Allows {
		state := "used"
		if staleAt[fmt.Sprintf("%s:%d", al.Pos.Filename, al.Pos.Line)] {
			state = "STALE"
		} else if !al.Used {
			state = "unaudited" // analyzer not in this run's selection
		}
		fmt.Printf("%s:%d: %s: %s -- %s\n", relPath(cwd, al.Pos.Filename), al.Pos.Line, state, al.Analyzer, al.Justification)
	}
}

func relPath(cwd, file string) string {
	if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// expand turns package patterns into a sorted list of directories that
// contain non-test Go files. testdata, vendor and hidden directories
// are skipped, matching the go tool's pattern semantics.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			recursive = true
			p = rest
			if p == "." || p == "" {
				p = "."
			}
		}
		if !recursive {
			add(filepath.Clean(p))
			continue
		}
		err := filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != p && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
