package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ucudnn/internal/causal"
)

func traceOpts(mode string, blobMiB int64) runOpts {
	o := runOpts{Net: "alexnet", Batch: 32, Device: "p100", Mode: mode, Policy: "powerOfTwo",
		WSMiB: 64, Iters: 2, BlobMiB: blobMiB}
	if mode == "wd" {
		o.TotalMiB = 256
	}
	return o
}

// The run → export → check round trip: the emitted timeline passes the
// validator and the analysis acceptance bars.
func TestRunAndCheck(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "timeline.json")
	o := traceOpts("wr", 0)
	o.Out = out
	o.Critical = true
	o.Stalls = true
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "critical path:") {
		t.Fatalf("report missing critical path:\n%s", buf.String())
	}
	var checkOut bytes.Buffer
	if err := check(out, &checkOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(checkOut.String(), ": ok (") {
		t.Fatalf("check output: %q", checkOut.String())
	}
}

// Under a blob budget the stall table must attribute every positive
// stall to exactly one cause, and the per-iteration critical path must
// cover >= 95% of wall time (the ISSUE's acceptance criterion; check
// enforces both).
func TestRunOOCStallAttribution(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "timeline.json")
	o := traceOpts("wd", 16)
	o.Net = "densenet40"
	o.Batch = 8
	o.Iters = 1
	o.Out = out
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	if err := check(out, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tl, err := causal.ReadTimeline(f)
	if err != nil {
		t.Fatal(err)
	}
	a := causal.Analyze(tl, nil)
	attributed := 0
	for _, l := range a.Layers {
		if l.StallNS > 0 {
			if l.Cause == "" {
				t.Fatalf("layer %s: stall without cause", l.Layer)
			}
			attributed++
		}
	}
	if attributed == 0 {
		t.Fatal("blob-budgeted run produced no attributable stalls")
	}
	if len(a.StallNS) == 0 {
		t.Fatal("no stall totals")
	}
}

// The determinism acceptance criterion, end to end through the CLI:
// identical bytes across worker counts.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	read := func(workers int) string {
		out := filepath.Join(dir, "tl.json")
		o := traceOpts("wr", 0)
		o.Workers = workers
		o.Out = out
		var buf bytes.Buffer
		if err := run(o, &buf); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := read(1), read(4); a != b {
		t.Fatal("timeline bytes differ between 1 and 4 workers")
	}
}

// Chrome export writes flow-arrow-enriched trace-event JSON.
func TestRunChromeExport(t *testing.T) {
	chrome := filepath.Join(t.TempDir(), "chrome.json")
	o := traceOpts("wr", 0)
	o.Chrome = chrome
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ph":"M"`, `"ph":"X"`, `"span":`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("chrome trace missing %s", want)
		}
	}
}

// check must reject a tampered timeline.
func TestCheckRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	o := traceOpts("wr", 0)
	o.Out = good
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad,
		bytes.Replace(data, []byte(`"schema": "ucudnn-causal-timeline/v1"`), []byte(`"schema": "bogus"`), 1),
		0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(bad, &buf); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("check accepted corrupt timeline: %v", err)
	}
	if err := check(filepath.Join(dir, "missing.json"), &buf); err == nil {
		t.Fatal("check accepted a missing file")
	}
}
