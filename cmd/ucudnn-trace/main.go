// Command ucudnn-trace exports and analyzes the unified causal
// timeline: it runs traced iterations of a zoo network (like
// ucudnn-time), correlates every kernel, transfer and layer span with
// its iteration → layer → conv-call scope chain, and reports the
// critical path and the modeled-vs-measured out-of-core stall table.
//
// Usage:
//
//	ucudnn-trace -net alexnet -batch 64 -mode wr -o timeline.json
//	ucudnn-trace -net densenet40 -batch 64 -mode wd -total 512 -blob-budget 96 -critical-path -stalls
//	ucudnn-trace -net alexnet -chrome trace.json     # Chrome/Perfetto, flow arrows
//	ucudnn-trace -check timeline.json                # schema + invariant validator
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ucudnn/internal/causal"
	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/debugserver"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/faults"
	"ucudnn/internal/flight"
	"ucudnn/internal/obs"
	"ucudnn/internal/prof"
	"ucudnn/internal/trace"
	"ucudnn/internal/zoo"
)

// minCoverage is the -check floor for per-iteration critical-path
// coverage (the acceptance bar: the chain must explain >= 95% of wall).
const minCoverage = 0.95

// runOpts mirrors the command-line flags.
type runOpts struct {
	Net      string
	Batch    int
	Device   string
	Mode     string
	Policy   string
	WSMiB    int64
	TotalMiB int64
	BlobMiB  int64
	Iters    int
	Workers  int

	Out      string
	Chrome   string
	Critical bool
	Stalls   bool
	Check    string
	Profile  bool
	Metrics  string
	Faults   string

	DebugAddr string
	Registry  *obs.Registry
}

func main() {
	var o runOpts
	flag.StringVar(&o.Net, "net", "alexnet", "network: alexnet, caffe-alexnet, resnet18, resnet50, densenet40, inception")
	flag.IntVar(&o.Batch, "batch", 64, "mini-batch size")
	flag.StringVar(&o.Device, "device", "p100", "device: k80, p100, v100")
	flag.StringVar(&o.Mode, "mode", "wr", "mode: cudnn, wr, wd")
	flag.StringVar(&o.Policy, "policy", "powerOfTwo", "batch-size policy: undivided, powerOfTwo, all")
	flag.Int64Var(&o.WSMiB, "ws", 64, "per-kernel workspace limit (MiB)")
	flag.Int64Var(&o.TotalMiB, "total", 0, "WD total workspace (MiB; required for -mode wd)")
	flag.Int64Var(&o.BlobMiB, "blob-budget", 0, "out-of-core blob budget (MiB, 0 = off)")
	flag.IntVar(&o.Iters, "iters", 2, "traced iterations")
	flag.IntVar(&o.Workers, "workers", 0, "kernel worker cap (0 = leave default); the exported timeline is byte-identical across worker counts")
	flag.StringVar(&o.Out, "o", "", "write the canonical causal timeline JSON here")
	flag.StringVar(&o.Chrome, "chrome", "", "write Chrome trace-event JSON (flow arrows, named tracks) here")
	flag.BoolVar(&o.Critical, "critical-path", false, "print the per-iteration critical-path report")
	flag.BoolVar(&o.Stalls, "stalls", false, "print the per-layer modeled-vs-measured stall table")
	flag.StringVar(&o.Check, "check", "", "validate a timeline JSON file (schema, ID numbering, flow edges, overlap, coverage) and exit")
	flag.BoolVar(&o.Profile, "profile", false, "enable phase profiling (real compute; feeds worker-imbalance attribution)")
	flag.StringVar(&o.Metrics, "metrics", "", "write metrics at exit, incl. ucudnn_stall_seconds_total / ucudnn_critical_path_seconds (\"-\" for stdout, .prom for Prometheus)")
	flag.StringVar(&o.Faults, "faults", "", "arm a fault-injection schedule, e.g. \"ucudnn_fp_arena_grow=every:2,shrink=4\"")
	flag.StringVar(&o.DebugAddr, "debug-addr", os.Getenv("UCUDNN_DEBUG_ADDR"),
		"serve /debug/ucudnn/ endpoints (incl. /timeline) on this address (default $UCUDNN_DEBUG_ADDR)")
	flag.Parse()
	flight.DumpOnSignal()

	if o.Check != "" {
		if err := check(o.Check, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	report, err := armFaults(o.Faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if o.Metrics != "" || o.DebugAddr != "" {
		o.Registry = obs.NewRegistry()
	}
	if o.DebugAddr != "" {
		srv, err := debugserver.Start(o.DebugAddr, o.Registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ucudnn/\n", srv.Addr())
	}
	err = run(o, os.Stdout)
	report()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// check validates a timeline file: the schema/ID/flow/overlap
// invariants plus the analysis-level acceptance bars (critical-path
// coverage, single-cause stall attribution).
func check(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := causal.ReadTimeline(f)
	if err != nil {
		return err
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	a := causal.Analyze(t, nil)
	for _, it := range a.Iterations {
		if it.WallNS > 0 && it.Coverage < minCoverage {
			return fmt.Errorf("%s: iteration %d critical path covers %.1f%% of wall, want >= %.0f%%",
				path, it.Span, it.Coverage*100, minCoverage*100)
		}
	}
	for _, l := range a.Layers {
		if l.StallNS > 0 && l.Cause == "" {
			return fmt.Errorf("%s: layer %s has %dns stall with no attributed cause", path, l.Layer, l.StallNS)
		}
	}
	fmt.Fprintf(w, "%s: ok (%d scopes, %d events, %d iterations, %d layers)\n",
		path, len(t.Scopes), len(t.Events), len(a.Iterations), len(a.Layers))
	return nil
}

// armFaults installs the fault schedule (if any) and returns a closure
// that disarms it and prints the fired shots.
func armFaults(spec string) (func(), error) {
	if spec == "" {
		return func() {}, nil
	}
	freg, err := faults.Parse(spec)
	if err != nil {
		return nil, err
	}
	faults.Install(freg)
	return func() {
		faults.Install(nil)
		fmt.Fprintf(os.Stderr, "faults: schedule %q fired [%s]\n", freg.String(), freg.ShotLog())
	}, nil
}

func run(o runOpts, w io.Writer) error {
	d, err := device.ByName(o.Device)
	if err != nil {
		return err
	}
	pol, err := core.ParsePolicy(o.Policy)
	if err != nil {
		return err
	}
	if o.Workers > 0 {
		prev := conv.SetMaxWorkers(o.Workers)
		defer conv.SetMaxWorkers(prev)
	}
	backend := cudnn.ModelOnlyBackend
	if o.Profile {
		// Launch accounting needs the kernels to actually run; the
		// simulated clock (and so the timeline) stays deterministic.
		backend = cudnn.ModelBackend
		prof.Enable()
		prof.SetMetrics(o.Registry)
		defer prof.Disable()
	}

	var oocModel *dnn.OOCModel
	var oocPlan dnn.OOCPlan
	if o.BlobMiB > 0 {
		probeInner := cudnn.NewHandle(d, cudnn.ModelOnlyBackend)
		probeInner.Mem().Cap = 0
		probeCtx := dnn.NewContext(probeInner, probeInner, o.WSMiB<<20)
		probeCtx.SkipCompute = true
		probeNet, _, err := buildNet(probeCtx, o.Net, o.Batch)
		if err != nil {
			return err
		}
		if err := probeNet.Setup(); err != nil {
			return fmt.Errorf("probing %s for the blob budget: %w", o.Net, err)
		}
		if oocModel, err = dnn.FootprintModel(probeNet); err != nil {
			return err
		}
		if oocPlan, err = dnn.PlanOOC(oocModel, o.BlobMiB<<20); err != nil {
			return err
		}
	}

	inner := cudnn.NewHandle(d, backend)
	inner.Mem().Cap = 0
	var convH dnn.ConvHandle = inner
	var uc *core.Handle
	switch o.Mode {
	case "cudnn":
	case "wr":
		uc, err = core.New(inner, core.WithPolicy(pol), core.WithWorkspaceLimit(o.WSMiB<<20),
			core.WithMetrics(o.Registry))
		if err != nil {
			return err
		}
		convH = uc
	case "wd":
		if o.TotalMiB <= 0 {
			return fmt.Errorf("-mode wd requires -total")
		}
		opts := []core.Option{core.WithPolicy(pol), core.WithMetrics(o.Registry)}
		total := o.TotalMiB << 20
		if oocModel != nil {
			total += oocPlan.PeakBytes
			opts = append(opts, core.WithBlobReserve(oocPlan.PeakBytes))
		}
		uc, err = core.New(inner, append(opts, core.WithWD(total))...)
		if err != nil {
			return err
		}
		convH = uc
	default:
		return fmt.Errorf("unknown mode %q", o.Mode)
	}

	ctx := dnn.NewContext(convH, inner, o.WSMiB<<20)
	ctx.SkipCompute = !o.Profile
	if oocModel != nil {
		ctx.OOC = dnn.NewOOCState(oocModel, oocPlan)
	}
	net, loss, err := buildNet(ctx, o.Net, o.Batch)
	if err != nil {
		return err
	}
	if !ctx.SkipCompute && loss != nil {
		loss.Labels = make([]int, o.Batch)
		for i := range loss.Labels {
			loss.Labels[i] = i % 10
		}
	}

	// Warm-up pass: plans get decided and arenas settle, so the traced
	// iterations see steady state.
	if err := net.RunIteration(); err != nil {
		return err
	}

	causal.Reset()
	causal.Enable()
	defer causal.Disable()
	rec := trace.New()
	// Attach through the core handle when there is one so the debug
	// server's /debug/ucudnn/timeline endpoint sees the recorder too.
	setRec := func(r *trace.Recorder) {
		if uc != nil {
			uc.SetTraceRecorder(r)
		} else {
			inner.SetTrace(r)
		}
	}
	setRec(rec)
	ctx.Trace = rec
	for i := 0; i < o.Iters; i++ {
		if err := net.RunIteration(); err != nil {
			return err
		}
	}
	ctx.Trace = nil
	causal.Disable()

	t := causal.Build(rec.Events(), causal.Scopes())
	if err := t.Validate(); err != nil {
		return fmt.Errorf("internal: exported timeline fails validation: %w", err)
	}
	a := causal.Analyze(t, busyByLayer(o.Profile))

	if o.Out != "" {
		f, err := os.Create(o.Out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote causal timeline (%d scopes, %d events) to %s\n", len(t.Scopes), len(t.Events), o.Out)
	}
	if o.Chrome != "" {
		f, err := os.Create(o.Chrome)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.WriteChrome(f); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", o.Chrome)
	}
	if o.Critical || o.Stalls || (o.Out == "" && o.Chrome == "") {
		a.WriteTable(w)
	}

	if o.Registry != nil {
		a.Metrics(o.Registry)
		flight.SyncMetrics(o.Registry)
	}
	if o.Metrics != "" {
		if err := o.Registry.WriteFile(o.Metrics); err != nil {
			return err
		}
	}
	if uc != nil {
		if err := uc.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// busyByLayer folds the profiler's launch accounting into a layer ->
// mean worker busy ratio map for worker-imbalance attribution. The
// profiler keys backward rows as "layer/bwd"; the timeline's layer
// scopes use the base name, so both directions fold onto it (keeping
// the minimum: the worst imbalance attributes the layer).
func busyByLayer(enabled bool) map[string]float64 {
	if !enabled {
		return nil
	}
	busy := map[string]float64{}
	for _, r := range prof.Snapshot() {
		if r.Layer == "" || r.Launches+r.NestedLaunches == 0 || r.MeanBusyRatio <= 0 {
			continue
		}
		name := strings.TrimSuffix(r.Layer, "/bwd")
		if b, ok := busy[name]; !ok || r.MeanBusyRatio < b {
			busy[name] = r.MeanBusyRatio
		}
	}
	return busy
}

// buildNet constructs the named zoo network over ctx.
func buildNet(ctx *dnn.Context, name string, batch int) (*dnn.Net, *dnn.SoftmaxLoss, error) {
	switch name {
	case "alexnet":
		net, loss := zoo.AlexNet(ctx, batch, 1000)
		return net, loss, nil
	case "caffe-alexnet":
		net, loss := zoo.CaffeAlexNet(ctx, batch, 1000)
		return net, loss, nil
	case "resnet18":
		net, loss := zoo.ResNet18(ctx, batch, 1000)
		return net, loss, nil
	case "resnet50":
		net, loss := zoo.ResNet50(ctx, batch, 1000)
		return net, loss, nil
	case "densenet40":
		net, loss := zoo.DenseNet40(ctx, batch, 40, 10)
		return net, loss, nil
	case "inception":
		return zoo.InceptionModule(ctx, batch), nil, nil
	}
	return nil, nil, fmt.Errorf("unknown network %q", name)
}
