// Command ucudnn-time is the `caffe time` equivalent: it builds one of
// the zoo networks over the simulated device, runs timed forward-backward
// iterations, and prints the per-layer breakdown — under plain cuDNN or
// µ-cuDNN (WR or WD).
//
// Usage:
//
//	ucudnn-time -net alexnet -batch 256 -device p100 -mode wr -policy powerOfTwo -ws 64
//	ucudnn-time -net resnet50 -batch 32 -mode wd -total 2544
//	ucudnn-time -net alexnet -mode wr -trace out.json -metrics -
//	ucudnn-time -net alexnet -mode wr -profile prof.json
package main

import (
	"flag"
	"fmt"
	"os"

	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/debugserver"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/faults"
	"ucudnn/internal/flight"
	"ucudnn/internal/obs"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
	"ucudnn/internal/zoo"
)

// runOpts mirrors the command-line flags.
type runOpts struct {
	Net      string
	Batch    int
	Device   string
	Mode     string
	Policy   string
	WSMiB    int64
	TotalMiB int64
	Iters    int
	BlobMiB  int64
	DB       string
	Trace    string
	Metrics  string
	Faults   string
	Profile  string

	// DebugAddr serves the debugserver endpoints; Registry is the shared
	// metrics registry backing /debug/ucudnn/metrics when it is set.
	DebugAddr string
	Registry  *obs.Registry
}

func main() {
	var o runOpts
	flag.StringVar(&o.Net, "net", "alexnet", "network: alexnet, resnet18, resnet50, densenet40, inception")
	flag.IntVar(&o.Batch, "batch", 256, "mini-batch size")
	flag.StringVar(&o.Device, "device", "p100", "device: k80, p100, v100")
	flag.StringVar(&o.Mode, "mode", "wr", "mode: cudnn, wr, wd")
	flag.StringVar(&o.Policy, "policy", "powerOfTwo", "batch-size policy: undivided, powerOfTwo, all")
	flag.Int64Var(&o.WSMiB, "ws", 64, "per-kernel workspace limit (MiB)")
	flag.Int64Var(&o.TotalMiB, "total", 0, "WD total workspace (MiB; required for -mode wd)")
	flag.IntVar(&o.Iters, "iters", 3, "timed iterations")
	flag.Int64Var(&o.BlobMiB, "blob-budget", 0,
		"out-of-core blob budget (MiB): stream activations in micro-batch windows under this working-set bound (0 = off)")
	flag.StringVar(&o.DB, "db", "", "benchmark database file (optional)")
	flag.StringVar(&o.Trace, "trace", "", "write a Chrome trace (chrome://tracing) of the final iteration")
	flag.StringVar(&o.Metrics, "metrics", "", "write µ-cuDNN metrics at exit (\"-\" for stdout, .prom for Prometheus; wr/wd modes)")
	flag.StringVar(&o.Faults, "faults", "", "arm a fault-injection schedule, e.g. \"ucudnn_fp_convolve=nth:3;ucudnn_fp_arena_grow=every:2,shrink=4\"")
	flag.StringVar(&o.Profile, "profile", "", "write a per-phase cost-attribution report (\"-\" for a table on stdout, else JSON; forces real compute)")
	flag.StringVar(&o.DebugAddr, "debug-addr", os.Getenv("UCUDNN_DEBUG_ADDR"),
		"serve /debug/ucudnn/ endpoints on this address, e.g. localhost:6060 (default $UCUDNN_DEBUG_ADDR)")
	flag.Parse()
	flight.DumpOnSignal() // SIGQUIT dumps a flight-recorder snapshot to stderr

	report, err := armFaults(o.Faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if o.DebugAddr != "" {
		o.Registry = obs.NewRegistry()
		srv, err := debugserver.Start(o.DebugAddr, o.Registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ucudnn/\n", srv.Addr())
	}
	err = run(o)
	report()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// armFaults installs the fault schedule (if any) and returns a closure
// that disarms it and prints the fired shots, so any failure under
// injection is reproducible from the output alone.
func armFaults(spec string) (func(), error) {
	if spec == "" {
		return func() {}, nil
	}
	freg, err := faults.Parse(spec)
	if err != nil {
		return nil, err
	}
	faults.Install(freg)
	return func() {
		faults.Install(nil)
		fmt.Fprintf(os.Stderr, "faults: schedule %q fired [%s]\n", freg.String(), freg.ShotLog())
	}, nil
}

func run(o runOpts) error {
	d, err := device.ByName(o.Device)
	if err != nil {
		return err
	}
	pol, err := core.ParsePolicy(o.Policy)
	if err != nil {
		return err
	}
	// Phase profiling needs the kernels to actually run, so -profile
	// trades the model-only fast path for real compute.
	backend := cudnn.ModelOnlyBackend
	if o.Profile != "" {
		backend = cudnn.ModelBackend
		prof.Enable()
		prof.SetMetrics(o.Registry)
		defer prof.Disable()
	}
	// Out-of-core streaming plans against a probe instance of the network
	// (shapes only, no compute): footprint model in, window plan out.
	var oocModel *dnn.OOCModel
	var oocPlan dnn.OOCPlan
	if o.BlobMiB > 0 {
		probeInner := cudnn.NewHandle(d, cudnn.ModelOnlyBackend)
		probeInner.Mem().Cap = 0
		probeCtx := dnn.NewContext(probeInner, probeInner, o.WSMiB<<20)
		probeCtx.SkipCompute = true
		probeNet, _, err := buildNet(probeCtx, o.Net, o.Batch)
		if err != nil {
			return err
		}
		if err := probeNet.Setup(); err != nil {
			return fmt.Errorf("probing %s for the blob budget: %w", o.Net, err)
		}
		if oocModel, err = dnn.FootprintModel(probeNet); err != nil {
			return err
		}
		if oocPlan, err = dnn.PlanOOC(oocModel, o.BlobMiB<<20); err != nil {
			return err
		}
	}

	inner := cudnn.NewHandle(d, backend)
	inner.Mem().Cap = 0
	var convH dnn.ConvHandle = inner
	var uc *core.Handle
	switch o.Mode {
	case "cudnn":
	case "wr":
		uc, err = core.New(inner, core.WithPolicy(pol), core.WithWorkspaceLimit(o.WSMiB<<20),
			core.WithCachePath(o.DB), core.WithMetricsPath(o.Metrics), core.WithMetrics(o.Registry))
		if err != nil {
			return err
		}
		convH = uc
	case "wd":
		if o.TotalMiB <= 0 {
			return fmt.Errorf("-mode wd requires -total")
		}
		opts := []core.Option{core.WithPolicy(pol), core.WithCachePath(o.DB),
			core.WithMetricsPath(o.Metrics), core.WithMetrics(o.Registry)}
		total := o.TotalMiB << 20
		if oocModel != nil {
			// One joint pool: the planned blob working set is reserved out
			// of the WD budget, so workspace and activations trade off
			// against each other instead of competing unaccounted.
			total += oocPlan.PeakBytes
			opts = append(opts, core.WithBlobReserve(oocPlan.PeakBytes))
		}
		uc, err = core.New(inner, append(opts, core.WithWD(total))...)
		if err != nil {
			return err
		}
		convH = uc
	default:
		return fmt.Errorf("unknown mode %q", o.Mode)
	}
	if o.Metrics != "" && uc == nil {
		fmt.Fprintln(os.Stderr, "ucudnn-time: -metrics needs -mode wr or wd; ignoring")
	}

	ctx := dnn.NewContext(convH, inner, o.WSMiB<<20)
	ctx.SkipCompute = o.Profile == ""
	if oocModel != nil {
		ctx.OOC = dnn.NewOOCState(oocModel, oocPlan)
	}
	net, loss, err := buildNet(ctx, o.Net, o.Batch)
	if err != nil {
		return err
	}
	if !ctx.SkipCompute && loss != nil {
		// Real compute runs the loss layer too; give it a label per sample.
		loss.Labels = make([]int, o.Batch)
		for i := range loss.Labels {
			loss.Labels[i] = i % 10
		}
	}

	rep, err := net.Time(o.Iters)
	if err != nil {
		return err
	}
	if o.Trace != "" {
		// Record one clean traced iteration after the timed ones (plans are
		// already decided, so no warm-up runs): kernel spans on track 0
		// (cudnn handle), layer spans on track 1 (Net).
		rec := trace.New()
		inner.SetTrace(rec)
		ctx.Trace = rec
		if err := net.Forward(); err != nil {
			return err
		}
		if err := net.Backward(); err != nil {
			return err
		}
		inner.SetTrace(nil)
		ctx.Trace = nil
		f, err := os.Create(o.Trace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteChrome(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s (open in chrome://tracing)\n", rec.Len(), o.Trace)
	}
	fmt.Printf("%s on %s, N=%d, mode=%s policy=%s (%d iterations)\n\n",
		o.Net, d.Name, o.Batch, o.Mode, pol, o.Iters)
	rep.Print(os.Stdout)
	fmt.Printf("\nconvolutions: %v (%.1f%% of iteration)\n",
		rep.SumMatching(zoo.IsConvLayer),
		100*float64(rep.SumMatching(zoo.IsConvLayer))/float64(rep.Total()))
	if uc != nil {
		fmt.Printf("µ-cuDNN optimization time: %v\n", uc.OptimizationTime())
		if s := uc.WDStats(); s != nil {
			fmt.Printf("WD: %d ILP vars, %d nodes, solved in %v, %s MiB assigned\n",
				s.ILPVars, s.ILPNodes, s.SolveTime, fmtMiB(s.TotalWorkspace))
		}
		if err := uc.Flush(); err != nil {
			return err
		}
	}
	if ooc := ctx.OOC; ooc != nil {
		r := ooc.Report()
		fmt.Printf("OOC: budget %s MiB, chunk %d (%d windows), peak %s MiB, floor=%v, degraded=%d\n",
			fmtMiB(oocPlan.Budget), r.Chunk, r.Windows, fmtMiB(oocPlan.PeakBytes), r.Floor, r.Degraded)
		if err := ooc.Metrics().WriteSummary(os.Stdout); err != nil {
			return err
		}
	}
	if err := core.WriteProfileFile(o.Profile); err != nil {
		return err
	}
	_ = tensor.Shape{}
	return nil
}

// buildNet constructs the named zoo network (with its loss head where the
// zoo defines one) over ctx.
func buildNet(ctx *dnn.Context, name string, batch int) (*dnn.Net, *dnn.SoftmaxLoss, error) {
	switch name {
	case "alexnet":
		net, loss := zoo.AlexNet(ctx, batch, 1000)
		return net, loss, nil
	case "caffe-alexnet":
		net, loss := zoo.CaffeAlexNet(ctx, batch, 1000)
		return net, loss, nil
	case "resnet18":
		net, loss := zoo.ResNet18(ctx, batch, 1000)
		return net, loss, nil
	case "resnet50":
		net, loss := zoo.ResNet50(ctx, batch, 1000)
		return net, loss, nil
	case "densenet40":
		net, loss := zoo.DenseNet40(ctx, batch, 40, 10)
		return net, loss, nil
	case "inception":
		return zoo.InceptionModule(ctx, batch), nil, nil
	}
	return nil, nil, fmt.Errorf("unknown network %q", name)
}

func fmtMiB(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }
