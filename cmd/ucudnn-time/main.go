// Command ucudnn-time is the `caffe time` equivalent: it builds one of
// the zoo networks over the simulated device, runs timed forward-backward
// iterations, and prints the per-layer breakdown — under plain cuDNN or
// µ-cuDNN (WR or WD).
//
// Usage:
//
//	ucudnn-time -net alexnet -batch 256 -device p100 -mode wr -policy powerOfTwo -ws 64
//	ucudnn-time -net resnet50 -batch 32 -mode wd -total 2544
package main

import (
	"flag"
	"fmt"
	"os"

	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
	"ucudnn/internal/zoo"
)

func main() {
	netName := flag.String("net", "alexnet", "network: alexnet, resnet18, resnet50, densenet40, inception")
	batch := flag.Int("batch", 256, "mini-batch size")
	dev := flag.String("device", "p100", "device: k80, p100, v100")
	mode := flag.String("mode", "wr", "mode: cudnn, wr, wd")
	policy := flag.String("policy", "powerOfTwo", "batch-size policy: undivided, powerOfTwo, all")
	wsMiB := flag.Int64("ws", 64, "per-kernel workspace limit (MiB)")
	totalMiB := flag.Int64("total", 0, "WD total workspace (MiB; required for -mode wd)")
	iters := flag.Int("iters", 3, "timed iterations")
	dbPath := flag.String("db", "", "benchmark database file (optional)")
	tracePath := flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the final iteration")
	flag.Parse()

	if err := run(*netName, *batch, *dev, *mode, *policy, *wsMiB, *totalMiB, *iters, *dbPath, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(netName string, batch int, dev, mode, policy string, wsMiB, totalMiB int64, iters int, dbPath, tracePath string) error {
	d, err := device.ByName(dev)
	if err != nil {
		return err
	}
	pol, err := core.ParsePolicy(policy)
	if err != nil {
		return err
	}
	inner := cudnn.NewHandle(d, cudnn.ModelOnlyBackend)
	inner.Mem().Cap = 0
	var convH dnn.ConvHandle = inner
	var uc *core.Handle
	switch mode {
	case "cudnn":
	case "wr":
		uc, err = core.New(inner, core.WithPolicy(pol), core.WithWorkspaceLimit(wsMiB<<20), core.WithCachePath(dbPath))
		if err != nil {
			return err
		}
		convH = uc
	case "wd":
		if totalMiB <= 0 {
			return fmt.Errorf("-mode wd requires -total")
		}
		uc, err = core.New(inner, core.WithPolicy(pol), core.WithWD(totalMiB<<20), core.WithCachePath(dbPath))
		if err != nil {
			return err
		}
		convH = uc
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	ctx := dnn.NewContext(convH, inner, wsMiB<<20)
	ctx.SkipCompute = true
	var net *dnn.Net
	switch netName {
	case "alexnet":
		net, _ = zoo.AlexNet(ctx, batch, 1000)
	case "caffe-alexnet":
		net, _ = zoo.CaffeAlexNet(ctx, batch, 1000)
	case "resnet18":
		net, _ = zoo.ResNet18(ctx, batch, 1000)
	case "resnet50":
		net, _ = zoo.ResNet50(ctx, batch, 1000)
	case "densenet40":
		net, _ = zoo.DenseNet40(ctx, batch, 40, 10)
	case "inception":
		net = zoo.InceptionModule(ctx, batch)
	default:
		return fmt.Errorf("unknown network %q", netName)
	}

	rep, err := net.Time(iters)
	if err != nil {
		return err
	}
	if tracePath != "" {
		// Record one clean traced iteration after the timed ones.
		rec := trace.New()
		inner.SetTrace(rec)
		if _, err := net.Time(1); err != nil {
			return err
		}
		inner.SetTrace(nil)
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteChrome(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s (open in chrome://tracing)\n", rec.Len(), tracePath)
	}
	fmt.Printf("%s on %s, N=%d, mode=%s policy=%s (%d iterations)\n\n",
		netName, d.Name, batch, mode, pol, iters)
	rep.Print(os.Stdout)
	fmt.Printf("\nconvolutions: %v (%.1f%% of iteration)\n",
		rep.SumMatching(zoo.IsConvLayer),
		100*float64(rep.SumMatching(zoo.IsConvLayer))/float64(rep.Total()))
	if uc != nil {
		fmt.Printf("µ-cuDNN optimization time: %v\n", uc.OptimizationTime())
		if s := uc.WDStats(); s != nil {
			fmt.Printf("WD: %d ILP vars, %d nodes, solved in %v, %s MiB assigned\n",
				s.ILPVars, s.ILPNodes, s.SolveTime, fmtMiB(s.TotalWorkspace))
		}
	}
	_ = tensor.Shape{}
	return nil
}

func fmtMiB(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }
