package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func opts(net string, batch int, dev, mode, policy string, ws, total int64, iters int, db, tracePath string) runOpts {
	return runOpts{Net: net, Batch: batch, Device: dev, Mode: mode, Policy: policy,
		WSMiB: ws, TotalMiB: total, Iters: iters, DB: db, Trace: tracePath}
}

func TestRunModes(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	cases := []struct {
		name string
		call func() error
	}{
		{"cudnn", func() error { return run(opts("inception", 16, "p100", "cudnn", "powerOfTwo", 8, 0, 1, "", "")) }},
		{"wr", func() error { return run(opts("inception", 16, "p100", "wr", "powerOfTwo", 8, 0, 1, "", "")) }},
		{"wd", func() error { return run(opts("inception", 16, "p100", "wd", "powerOfTwo", 8, 64, 1, "", "")) }},
		{"trace", func() error { return run(opts("inception", 16, "k80", "wr", "undivided", 8, 0, 1, "", tracePath)) }},
		{"db", func() error {
			return run(opts("inception", 16, "v100", "wr", "all", 8, 0, 1, filepath.Join(dir, "db.jsonl"), ""))
		}},
	}
	for _, c := range cases {
		if err := c.call(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"ph\":\"X\"") {
		t.Fatal("trace file has no spans")
	}
}

// TestRunTraceHasLayerSpans checks the acceptance criterion for
// `ucudnn-time -trace`: the Chrome trace holds exactly one span per
// layer per direction (the layer rows of the paper's Fig. 3) alongside
// the kernel spans.
func TestRunTraceHasLayerSpans(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	if err := run(opts("inception", 16, "p100", "wr", "powerOfTwo", 8, 0, 1, "", tracePath)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatal(err)
	}
	spans := map[[2]string]int{}
	kernels := 0
	for _, e := range events {
		switch e.Cat {
		case "forward", "backward":
			spans[[2]string{e.Cat, e.Name}]++
		default:
			kernels++
		}
	}
	if len(spans) == 0 || kernels == 0 {
		t.Fatalf("trace lacks layer or kernel spans: %d layer series, %d kernel events", len(spans), kernels)
	}
	for k, n := range spans {
		if n != 1 {
			t.Fatalf("%v spans = %d, want exactly 1", k, n)
		}
	}
}

func TestRunMetrics(t *testing.T) {
	dir := t.TempDir()
	for _, path := range []string{filepath.Join(dir, "m.txt"), filepath.Join(dir, "m.prom")} {
		o := opts("inception", 16, "p100", "wr", "powerOfTwo", 8, 0, 1, "", "")
		o.Metrics = path
		if err := run(o); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "ucudnn_opt_wr_seconds") {
			t.Fatalf("%s: no WR optimizer metrics in output", path)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(opts("bogus", 8, "p100", "wr", "powerOfTwo", 8, 0, 1, "", "")); err == nil {
		t.Fatal("bogus net must error")
	}
	if err := run(opts("inception", 8, "bogus", "wr", "powerOfTwo", 8, 0, 1, "", "")); err == nil {
		t.Fatal("bogus device must error")
	}
	if err := run(opts("inception", 8, "p100", "bogus", "powerOfTwo", 8, 0, 1, "", "")); err == nil {
		t.Fatal("bogus mode must error")
	}
	if err := run(opts("inception", 8, "p100", "wr", "bogus", 8, 0, 1, "", "")); err == nil {
		t.Fatal("bogus policy must error")
	}
	if err := run(opts("inception", 8, "p100", "wd", "powerOfTwo", 8, 0, 1, "", "")); err == nil {
		t.Fatal("wd without total must error")
	}
}

func TestAllNetworksBuild(t *testing.T) {
	for _, n := range []string{"alexnet", "caffe-alexnet", "resnet18", "densenet40"} {
		if err := run(opts(n, 4, "p100", "cudnn", "powerOfTwo", 8, 0, 1, "", "")); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}
