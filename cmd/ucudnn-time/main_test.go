package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunModes(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	cases := []struct {
		name string
		call func() error
	}{
		{"cudnn", func() error { return run("inception", 16, "p100", "cudnn", "powerOfTwo", 8, 0, 1, "", "") }},
		{"wr", func() error { return run("inception", 16, "p100", "wr", "powerOfTwo", 8, 0, 1, "", "") }},
		{"wd", func() error { return run("inception", 16, "p100", "wd", "powerOfTwo", 8, 64, 1, "", "") }},
		{"trace", func() error { return run("inception", 16, "k80", "wr", "undivided", 8, 0, 1, "", tracePath) }},
		{"db", func() error {
			return run("inception", 16, "v100", "wr", "all", 8, 0, 1, filepath.Join(dir, "db.jsonl"), "")
		}},
	}
	for _, c := range cases {
		if err := c.call(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"ph\":\"X\"") {
		t.Fatal("trace file has no spans")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 8, "p100", "wr", "powerOfTwo", 8, 0, 1, "", ""); err == nil {
		t.Fatal("bogus net must error")
	}
	if err := run("inception", 8, "bogus", "wr", "powerOfTwo", 8, 0, 1, "", ""); err == nil {
		t.Fatal("bogus device must error")
	}
	if err := run("inception", 8, "p100", "bogus", "powerOfTwo", 8, 0, 1, "", ""); err == nil {
		t.Fatal("bogus mode must error")
	}
	if err := run("inception", 8, "p100", "wr", "bogus", 8, 0, 1, "", ""); err == nil {
		t.Fatal("bogus policy must error")
	}
	if err := run("inception", 8, "p100", "wd", "powerOfTwo", 8, 0, 1, "", ""); err == nil {
		t.Fatal("wd without total must error")
	}
}

func TestAllNetworksBuild(t *testing.T) {
	for _, n := range []string{"alexnet", "caffe-alexnet", "resnet18", "densenet40"} {
		if err := run(n, 4, "p100", "cudnn", "powerOfTwo", 8, 0, 1, "", ""); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}
