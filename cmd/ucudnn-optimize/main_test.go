package main

import (
	"path/filepath"
	"testing"
)

func TestParseDims(t *testing.T) {
	d, err := parseDims("256x64x27x27", 4)
	if err != nil || d[0] != 256 || d[3] != 27 {
		t.Fatalf("parseDims: %v %v", d, err)
	}
	if _, err := parseDims("1x2x3", 4); err == nil {
		t.Fatal("wrong arity must error")
	}
	if _, err := parseDims("1x0x3", 3); err == nil {
		t.Fatal("zero dim must error")
	}
	if _, err := parseDims("axbxc", 3); err == nil {
		t.Fatal("non-numeric must error")
	}
}

func TestRunAllOps(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.jsonl")
	for _, op := range []string{"forward", "backward-data", "backward-filter"} {
		if err := run("16x8x13x13", "12x3x3", 1, 1, op, "p100", "powerOfTwo", 8, db, 2, true); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bad", "12x3x3", 1, 1, "forward", "p100", "powerOfTwo", 8, "", 1, false); err == nil {
		t.Fatal("bad shape must error")
	}
	if err := run("16x8x13x13", "12x3x3", 1, 1, "sideways", "p100", "powerOfTwo", 8, "", 1, false); err == nil {
		t.Fatal("bad op must error")
	}
	if err := run("16x8x13x13", "12x3x3", 1, 1, "forward", "abacus", "powerOfTwo", 8, "", 1, false); err == nil {
		t.Fatal("bad device must error")
	}
	if err := run("16x8x13x13", "12x3x3", 1, 1, "forward", "p100", "sometimes", 8, "", 1, false); err == nil {
		t.Fatal("bad policy must error")
	}
	// Kernel larger than padded input: invalid convolution.
	if err := run("1x1x2x2", "1x5x5", 0, 1, "forward", "p100", "powerOfTwo", 8, "", 1, false); err == nil {
		t.Fatal("invalid convolution must error")
	}
}
