package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func kernelOpts(shape, filter string, pad, stride int, op, dev, policy string, ws int64, db string, workers int, front bool) runOpts {
	return runOpts{Shape: shape, Filter: filter, Pad: pad, Stride: stride, Op: op,
		Device: dev, Policy: policy, WSMiB: ws, DB: db, Workers: workers, ShowFront: front}
}

func TestParseDims(t *testing.T) {
	d, err := parseDims("256x64x27x27", 4)
	if err != nil || d[0] != 256 || d[3] != 27 {
		t.Fatalf("parseDims: %v %v", d, err)
	}
	if _, err := parseDims("1x2x3", 4); err == nil {
		t.Fatal("wrong arity must error")
	}
	if _, err := parseDims("1x0x3", 3); err == nil {
		t.Fatal("zero dim must error")
	}
	if _, err := parseDims("axbxc", 3); err == nil {
		t.Fatal("non-numeric must error")
	}
}

func TestRunAllOps(t *testing.T) {
	db := filepath.Join(t.TempDir(), "db.jsonl")
	for _, op := range []string{"forward", "backward-data", "backward-filter"} {
		if err := run(kernelOpts("16x8x13x13", "12x3x3", 1, 1, op, "p100", "powerOfTwo", 8, db, 2, true)); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
}

// TestRunNetWD covers the ISSUE acceptance criterion: an AlexNet WD run
// with -metrics reports optimizer wall-clock, DP state counts, ILP
// variable/node counts, and cache traffic.
func TestRunNetWD(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.txt")
	tracePath := filepath.Join(dir, "plan.json")
	o := runOpts{Net: "alexnet", Batch: 64, TotalMiB: 128, Device: "p100",
		Policy: "powerOfTwo", Workers: 1, Metrics: metrics, Trace: tracePath}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		"ucudnn_opt_wd_seconds",
		"ucudnn_opt_desirable_dp_states_total",
		"ucudnn_ilp_variables",
		"ucudnn_ilp_nodes_total",
		"ucudnn_cache_misses_total",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("metrics output lacks %s:\n%s", want, s)
		}
	}
	tr, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), "\"ph\":\"X\"") {
		t.Fatal("plan trace has no spans")
	}
}

func TestRunKernelMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	o := kernelOpts("16x8x13x13", "12x3x3", 1, 1, "forward", "p100", "powerOfTwo", 8, "", 1, true)
	o.Metrics = filepath.Join(dir, "m.prom")
	o.Trace = filepath.Join(dir, "t.json")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# TYPE ucudnn_opt_wr_seconds histogram") {
		t.Fatal("Prometheus output lacks WR histogram")
	}
	if _, err := os.Stat(o.Trace); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(kernelOpts("bad", "12x3x3", 1, 1, "forward", "p100", "powerOfTwo", 8, "", 1, false)); err == nil {
		t.Fatal("bad shape must error")
	}
	if err := run(kernelOpts("16x8x13x13", "12x3x3", 1, 1, "sideways", "p100", "powerOfTwo", 8, "", 1, false)); err == nil {
		t.Fatal("bad op must error")
	}
	if err := run(kernelOpts("16x8x13x13", "12x3x3", 1, 1, "forward", "abacus", "powerOfTwo", 8, "", 1, false)); err == nil {
		t.Fatal("bad device must error")
	}
	if err := run(kernelOpts("16x8x13x13", "12x3x3", 1, 1, "forward", "p100", "sometimes", 8, "", 1, false)); err == nil {
		t.Fatal("bad policy must error")
	}
	// Kernel larger than padded input: invalid convolution.
	if err := run(kernelOpts("1x1x2x2", "1x5x5", 0, 1, "forward", "p100", "powerOfTwo", 8, "", 1, false)); err == nil {
		t.Fatal("invalid convolution must error")
	}
	if err := run(runOpts{Net: "alexnet", Batch: 8}); err == nil {
		t.Fatal("-net without -total must error")
	}
	if err := run(runOpts{Net: "nonesuch", Batch: 8, TotalMiB: 64, Device: "p100", Policy: "powerOfTwo"}); err == nil {
		t.Fatal("bogus -net must error")
	}
}
