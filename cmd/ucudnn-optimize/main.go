// Command ucudnn-optimize runs the µ-cuDNN optimizers offline: it
// benchmarks a convolution kernel's algorithms (populating the file
// benchmark database for later runs, §III-D), prints WR plans across
// workspace limits, and dumps the desirable-configuration Pareto front.
//
// Usage:
//
//	ucudnn-optimize -shape 256x64x27x27 -filter 192x5x5 -pad 2 -ws 64
//	ucudnn-optimize -shape 32x128x28x28 -filter 128x3x3 -pad 1 -op backward-filter -policy all -db bench.db
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/device"
	"ucudnn/internal/tensor"
)

func main() {
	shape := flag.String("shape", "256x64x27x27", "input NxCxHxW")
	filter := flag.String("filter", "192x5x5", "filter KxRxS")
	pad := flag.Int("pad", 2, "padding")
	stride := flag.Int("stride", 1, "stride")
	opName := flag.String("op", "forward", "operation: forward, backward-data, backward-filter")
	dev := flag.String("device", "p100", "device: k80, p100, v100")
	policy := flag.String("policy", "powerOfTwo", "batch-size policy")
	wsMiB := flag.Int64("ws", 64, "workspace limit (MiB)")
	dbPath := flag.String("db", "", "benchmark database file to populate")
	workers := flag.Int("workers", 1, "parallel benchmark workers")
	showFront := flag.Bool("front", true, "print the desirable-configuration Pareto front")
	flag.Parse()

	if err := run(*shape, *filter, *pad, *stride, *opName, *dev, *policy, *wsMiB, *dbPath, *workers, *showFront); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseDims(s string, n int) ([]int, error) {
	parts := strings.Split(s, "x")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d dimensions in %q", n, s)
	}
	out := make([]int, n)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func run(shape, filter string, pad, stride int, opName, dev, policy string, wsMiB int64, dbPath string, workers int, showFront bool) error {
	in, err := parseDims(shape, 4)
	if err != nil {
		return err
	}
	fl, err := parseDims(filter, 3)
	if err != nil {
		return err
	}
	var op conv.Op
	switch opName {
	case "forward":
		op = conv.Forward
	case "backward-data":
		op = conv.BackwardData
	case "backward-filter":
		op = conv.BackwardFilter
	default:
		return fmt.Errorf("unknown op %q", opName)
	}
	d, err := device.ByName(dev)
	if err != nil {
		return err
	}
	pol, err := core.ParsePolicy(policy)
	if err != nil {
		return err
	}
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: in[0], C: in[1], H: in[2], W: in[3]},
		Filt:   tensor.Filter{K: fl[0], C: in[1], R: fl[1], S: fl[2]},
		Params: tensor.ConvParams{PadH: pad, PadW: pad, StrideH: stride, StrideW: stride},
	}
	if !cs.Valid() {
		return fmt.Errorf("invalid convolution %v", cs)
	}
	h := cudnn.NewHandle(d, cudnn.ModelOnlyBackend)
	cache, err := core.NewCache(dbPath)
	if err != nil {
		return err
	}
	defer cache.Close()
	b := core.NewBencher(h, cache, workers)
	k := core.Kernel{Op: op, Shape: cs}

	fmt.Printf("kernel: %v on %s\n\n", k, d.Name)
	fmt.Println("per-algorithm benchmark (undivided):")
	for _, p := range b.Perfs(k) {
		fmt.Printf("  %-22s %10v  ws %8.1f MiB\n", p.Algo, p.Time, float64(p.Memory)/(1<<20))
	}

	fmt.Printf("\nWR plans (%s policy):\n", pol)
	for _, lim := range []int64{8, wsMiB, 512} {
		plan, err := core.OptimizeWR(b, k, lim<<20, pol)
		if err != nil {
			fmt.Printf("  %4d MiB: %v\n", lim, err)
			continue
		}
		fmt.Printf("  %4d MiB: %10v  ws %8.1f MiB  %v\n",
			lim, plan.Time, float64(plan.Workspace)/(1<<20), plan.Config)
	}

	if showFront {
		front, err := core.DesirableSet(b, k, wsMiB<<20, pol)
		if err != nil {
			return err
		}
		fmt.Printf("\ndesirable configurations at %d MiB (%d points):\n", wsMiB, len(front))
		for _, sc := range front {
			fmt.Printf("  %10v  ws %8.1f MiB  %v\n", sc.Time, float64(sc.Workspace)/(1<<20), sc.Config)
		}
	}
	if dbPath != "" {
		fmt.Printf("\nbenchmark database %s now holds %d entries\n", dbPath, cache.Len())
	}
	return nil
}
