// Command ucudnn-optimize runs the µ-cuDNN optimizers offline: it
// benchmarks a convolution kernel's algorithms (populating the file
// benchmark database for later runs, §III-D), prints WR plans across
// workspace limits, and dumps the desirable-configuration Pareto front.
// With -net it instead optimizes a whole zoo network under Workspace
// Division, reporting the §IV-B optimization-cost numbers (DP states,
// ILP variables and branch-and-bound nodes, solve wall-clock).
//
// Usage:
//
//	ucudnn-optimize -shape 256x64x27x27 -filter 192x5x5 -pad 2 -ws 64
//	ucudnn-optimize -shape 32x128x28x28 -filter 128x3x3 -pad 1 -op backward-filter -policy all -db bench.db
//	ucudnn-optimize -net alexnet -batch 256 -total 128 -metrics - -trace plan.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ucudnn/internal/conv"
	"ucudnn/internal/core"
	"ucudnn/internal/cudnn"
	"ucudnn/internal/debugserver"
	"ucudnn/internal/device"
	"ucudnn/internal/dnn"
	"ucudnn/internal/faults"
	"ucudnn/internal/flight"
	"ucudnn/internal/obs"
	"ucudnn/internal/prof"
	"ucudnn/internal/tensor"
	"ucudnn/internal/trace"
	"ucudnn/internal/zoo"
)

// runOpts mirrors the command-line flags.
type runOpts struct {
	Shape     string
	Filter    string
	Pad       int
	Stride    int
	Op        string
	Device    string
	Policy    string
	WSMiB     int64
	DB        string
	Workers   int
	ShowFront bool
	Net       string
	Batch     int
	TotalMiB  int64
	BlobMiB   int64
	Metrics   string
	Trace     string
	Faults    string
	Profile   string

	// DebugAddr serves the debugserver endpoints; Registry is the shared
	// metrics registry backing /debug/ucudnn/metrics when it is set.
	DebugAddr string
	Registry  *obs.Registry
}

func main() {
	var o runOpts
	flag.StringVar(&o.Shape, "shape", "256x64x27x27", "input NxCxHxW")
	flag.StringVar(&o.Filter, "filter", "192x5x5", "filter KxRxS")
	flag.IntVar(&o.Pad, "pad", 2, "padding")
	flag.IntVar(&o.Stride, "stride", 1, "stride")
	flag.StringVar(&o.Op, "op", "forward", "operation: forward, backward-data, backward-filter")
	flag.StringVar(&o.Device, "device", "p100", "device: k80, p100, v100")
	flag.StringVar(&o.Policy, "policy", "powerOfTwo", "batch-size policy")
	flag.Int64Var(&o.WSMiB, "ws", 64, "workspace limit (MiB)")
	flag.StringVar(&o.DB, "db", "", "benchmark database file to populate")
	flag.IntVar(&o.Workers, "workers", 1, "parallel benchmark workers")
	flag.BoolVar(&o.ShowFront, "front", true, "print the desirable-configuration Pareto front")
	flag.StringVar(&o.Net, "net", "", "optimize a whole network under WD instead of one kernel (alexnet, resnet18, ...)")
	flag.IntVar(&o.Batch, "batch", 256, "mini-batch size for -net mode")
	flag.Int64Var(&o.TotalMiB, "total", 0, "WD total workspace (MiB; required for -net)")
	flag.Int64Var(&o.BlobMiB, "blob-budget", 0,
		"out-of-core blob budget (MiB) for -net mode: reserve the planned activation working set out of the WD pool (0 = off)")
	flag.StringVar(&o.Metrics, "metrics", "", "write optimizer metrics at exit (\"-\" for stdout, .prom for Prometheus)")
	flag.StringVar(&o.Trace, "trace", "", "write the chosen plans as a Chrome-trace micro-batch timeline (Fig. 3)")
	flag.StringVar(&o.Faults, "faults", "", "arm a fault-injection schedule, e.g. \"ucudnn_fp_find=every:5;ucudnn_fp_cache_load=nth:1\"")
	flag.StringVar(&o.Profile, "profile", "", "write a per-phase cost-attribution report at exit (\"-\" for a table on stdout, else JSON)")
	flag.StringVar(&o.DebugAddr, "debug-addr", os.Getenv("UCUDNN_DEBUG_ADDR"),
		"serve /debug/ucudnn/ endpoints on this address, e.g. localhost:6060 (default $UCUDNN_DEBUG_ADDR)")
	flag.Parse()
	flight.DumpOnSignal() // SIGQUIT dumps a flight-recorder snapshot to stderr

	report, err := armFaults(o.Faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if o.DebugAddr != "" {
		o.Registry = obs.NewRegistry()
		srv, err := debugserver.Start(o.DebugAddr, o.Registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/ucudnn/\n", srv.Addr())
	}
	if o.Profile != "" {
		prof.Enable()
		prof.SetMetrics(o.Registry)
		defer prof.Disable()
	}
	err = run(o)
	report()
	if err == nil {
		err = core.WriteProfileFile(o.Profile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// armFaults installs the fault schedule (if any) and returns a closure
// that disarms it and prints the fired shots, so any failure under
// injection is reproducible from the output alone.
func armFaults(spec string) (func(), error) {
	if spec == "" {
		return func() {}, nil
	}
	freg, err := faults.Parse(spec)
	if err != nil {
		return nil, err
	}
	faults.Install(freg)
	return func() {
		faults.Install(nil)
		fmt.Fprintf(os.Stderr, "faults: schedule %q fired [%s]\n", freg.String(), freg.ShotLog())
	}, nil
}

func parseDims(s string, n int) ([]int, error) {
	parts := strings.Split(s, "x")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d dimensions in %q", n, s)
	}
	out := make([]int, n)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func run(o runOpts) error {
	if o.Net != "" {
		return runNet(o)
	}
	return runKernel(o)
}

// runKernel is the original single-kernel mode: benchmark, WR sweep,
// Pareto front.
func runKernel(o runOpts) error {
	in, err := parseDims(o.Shape, 4)
	if err != nil {
		return err
	}
	fl, err := parseDims(o.Filter, 3)
	if err != nil {
		return err
	}
	var op conv.Op
	switch o.Op {
	case "forward":
		op = conv.Forward
	case "backward-data":
		op = conv.BackwardData
	case "backward-filter":
		op = conv.BackwardFilter
	default:
		return fmt.Errorf("unknown op %q", o.Op)
	}
	d, err := device.ByName(o.Device)
	if err != nil {
		return err
	}
	pol, err := core.ParsePolicy(o.Policy)
	if err != nil {
		return err
	}
	cs := tensor.ConvShape{
		In:     tensor.Shape{N: in[0], C: in[1], H: in[2], W: in[3]},
		Filt:   tensor.Filter{K: fl[0], C: in[1], R: fl[1], S: fl[2]},
		Params: tensor.ConvParams{PadH: o.Pad, PadW: o.Pad, StrideH: o.Stride, StrideW: o.Stride},
	}
	if !cs.Valid() {
		return fmt.Errorf("invalid convolution %v", cs)
	}
	h := cudnn.NewHandle(d, cudnn.ModelOnlyBackend)
	cache, err := core.NewCache(o.DB)
	if err != nil {
		return err
	}
	defer cache.Close()
	b := core.NewBencher(h, cache, o.Workers)
	reg := o.Registry
	if reg == nil && o.Metrics != "" {
		reg = obs.NewRegistry()
	}
	if reg != nil {
		b.SetMetrics(reg)
	}
	k := core.Kernel{Op: op, Shape: cs}

	fmt.Printf("kernel: %v on %s\n\n", k, d.Name)
	fmt.Println("per-algorithm benchmark (undivided):")
	for _, p := range b.Perfs(k) {
		fmt.Printf("  %-22s %10v  ws %8.1f MiB\n", p.Algo, p.Time, float64(p.Memory)/(1<<20))
	}

	var tracePlan *core.Plan
	fmt.Printf("\nWR plans (%s policy):\n", pol)
	for _, lim := range []int64{8, o.WSMiB, 512} {
		plan, err := core.OptimizeWR(b, k, lim<<20, pol)
		if err != nil {
			fmt.Printf("  %4d MiB: %v\n", lim, err)
			continue
		}
		fmt.Printf("  %4d MiB: %10v  ws %8.1f MiB  %v\n",
			lim, plan.Time, float64(plan.Workspace)/(1<<20), plan.Config)
		if lim == o.WSMiB {
			tracePlan = &plan
		}
	}

	if o.ShowFront {
		front, err := core.DesirableSet(b, k, o.WSMiB<<20, pol)
		if err != nil {
			return err
		}
		fmt.Printf("\ndesirable configurations at %d MiB (%d points):\n", o.WSMiB, len(front))
		for _, sc := range front {
			fmt.Printf("  %10v  ws %8.1f MiB  %v\n", sc.Time, float64(sc.Workspace)/(1<<20), sc.Config)
		}
	}
	if o.DB != "" {
		fmt.Printf("\nbenchmark database %s now holds %d entries\n", o.DB, cache.Len())
	}
	if o.Trace != "" {
		var plans []core.Plan
		if tracePlan != nil {
			plans = []core.Plan{*tracePlan}
		}
		if err := writePlanTrace(o.Trace, b, plans); err != nil {
			return err
		}
	}
	return reg.WriteFile(o.Metrics)
}

// runNet optimizes all convolution kernels of a zoo network jointly under
// the WD total-workspace budget, printing the paper's §IV-B cost metrics.
func runNet(o runOpts) error {
	if o.TotalMiB <= 0 {
		return fmt.Errorf("-net requires -total")
	}
	d, err := device.ByName(o.Device)
	if err != nil {
		return err
	}
	pol, err := core.ParsePolicy(o.Policy)
	if err != nil {
		return err
	}
	inner := cudnn.NewHandle(d, cudnn.ModelOnlyBackend)
	inner.Mem().Cap = 0

	// With a blob budget, plan out-of-core streaming against a probe
	// instance first: the planned working set is then reserved out of the
	// WD pool, making activations and workspace one joint budget.
	var oocModel *dnn.OOCModel
	var oocPlan dnn.OOCPlan
	if o.BlobMiB > 0 {
		probeInner := cudnn.NewHandle(d, cudnn.ModelOnlyBackend)
		probeInner.Mem().Cap = 0
		probeCtx := dnn.NewContext(probeInner, probeInner, core.DefaultWorkspaceLimit)
		probeCtx.SkipCompute = true
		probeNet, err := buildZooNet(probeCtx, o.Net, o.Batch)
		if err != nil {
			return err
		}
		if err := probeNet.Setup(); err != nil {
			return fmt.Errorf("probing %s for the blob budget: %w", o.Net, err)
		}
		if oocModel, err = dnn.FootprintModel(probeNet); err != nil {
			return err
		}
		if oocPlan, err = dnn.PlanOOC(oocModel, o.BlobMiB<<20); err != nil {
			return err
		}
	}

	opts := []core.Option{core.WithPolicy(pol), core.WithCachePath(o.DB),
		core.WithWorkers(o.Workers), core.WithMetricsPath(o.Metrics), core.WithMetrics(o.Registry)}
	total := o.TotalMiB << 20
	if oocModel != nil {
		total += oocPlan.PeakBytes
		opts = append(opts, core.WithBlobReserve(oocPlan.PeakBytes))
	}
	uc, err := core.New(inner, append(opts, core.WithWD(total))...)
	if err != nil {
		return err
	}
	ctx := dnn.NewContext(uc, inner, core.DefaultWorkspaceLimit)
	ctx.SkipCompute = true
	if oocModel != nil {
		ctx.OOC = dnn.NewOOCState(oocModel, oocPlan)
	}
	net, err := buildZooNet(ctx, o.Net, o.Batch)
	if err != nil {
		return err
	}
	// Setup registers every convolution kernel through the virtual-algorithm
	// Get* calls; finalization then runs the desirable-set DPs and the ILP.
	if err := net.Setup(); err != nil {
		return err
	}
	start := time.Now()
	if err := uc.FinalizeRegistration(); err != nil {
		return err
	}
	wall := time.Since(start)
	s := uc.WDStats()
	if s == nil {
		return fmt.Errorf("WD produced no result for %q", o.Net)
	}
	fmt.Printf("%s on %s, N=%d, WD total %d MiB, %s policy\n\n", o.Net, d.Name, o.Batch, o.TotalMiB, pol)
	fmt.Printf("optimization wall-clock:  %v\n", wall)
	fmt.Printf("ILP variables:            %d\n", s.ILPVars)
	fmt.Printf("branch-and-bound nodes:   %d\n", s.ILPNodes)
	fmt.Printf("simplex iterations:       %d\n", s.SimplexIters)
	fmt.Printf("ILP solve time:           %v\n", s.SolveTime)
	fmt.Printf("assigned workspace:       %.1f MiB\n", float64(s.TotalWorkspace)/(1<<20))
	fmt.Printf("predicted iteration conv: %v\n", s.TotalTime)
	if s.BlobReserve > 0 {
		fmt.Printf("joint pool:               %.1f MiB total, %.1f MiB reserved for blobs, %.1f MiB workspace-effective\n",
			float64(o.TotalMiB<<20+s.BlobReserve)/(1<<20), float64(s.BlobReserve)/(1<<20), float64(s.EffectiveBudget)/(1<<20))
	}
	if oocModel != nil {
		fmt.Printf("OOC plan:                 chunk %d (%d windows), peak %.1f MiB, floor=%v\n",
			oocPlan.Chunk, oocPlan.Windows, float64(oocPlan.PeakBytes)/(1<<20), oocPlan.Floor)
	}

	plans := uc.Plans()
	sort.Slice(plans, func(i, j int) bool { return plans[i].Kernel.String() < plans[j].Kernel.String() })
	fmt.Printf("\nplans (%d unique kernels):\n", len(plans))
	for _, p := range plans {
		fmt.Printf("  %v\n", p)
	}

	if o.Trace != "" {
		b := core.NewBencher(inner, uc.Cache(), 1)
		if err := writePlanTrace(o.Trace, b, plans); err != nil {
			return err
		}
	}
	return uc.Flush()
}

// buildZooNet constructs the named zoo network over ctx (loss head
// discarded: optimization only needs the kernel registrations).
func buildZooNet(ctx *dnn.Context, name string, batch int) (*dnn.Net, error) {
	switch name {
	case "alexnet":
		net, _ := zoo.AlexNet(ctx, batch, 1000)
		return net, nil
	case "caffe-alexnet":
		net, _ := zoo.CaffeAlexNet(ctx, batch, 1000)
		return net, nil
	case "resnet18":
		net, _ := zoo.ResNet18(ctx, batch, 1000)
		return net, nil
	case "resnet50":
		net, _ := zoo.ResNet50(ctx, batch, 1000)
		return net, nil
	case "densenet40":
		net, _ := zoo.DenseNet40(ctx, batch, 40, 10)
		return net, nil
	case "inception":
		return zoo.InceptionModule(ctx, batch), nil
	}
	return nil, fmt.Errorf("unknown network %q", name)
}

// writePlanTrace synthesizes the paper's Fig. 3 view of the chosen plans:
// each kernel's micro-batches laid end to end on one timeline, named
// algo@batch, with per-micro durations looked up in the benchmark cache.
func writePlanTrace(path string, b *core.Bencher, plans []core.Plan) error {
	rec := trace.New()
	var cursor time.Duration
	for _, p := range plans {
		for _, mc := range p.Config {
			dur := p.Time / time.Duration(len(p.Config))
			for _, perf := range b.Perfs(core.Kernel{Op: p.Kernel.Op, Shape: p.Kernel.Shape.WithN(mc.BatchSize)}) {
				if perf.Algo == mc.Algo {
					dur = perf.Time
					break
				}
			}
			rec.Add(trace.Event{
				Name:  fmt.Sprintf("%s %v", p.Kernel.Op, mc),
				Cat:   p.Kernel.Op.String(),
				Start: cursor,
				Dur:   dur,
			})
			cursor += dur
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteChrome(f); err != nil {
		return err
	}
	fmt.Printf("\nwrote %d micro-batch spans to %s (open in chrome://tracing)\n", rec.Len(), path)
	return nil
}
