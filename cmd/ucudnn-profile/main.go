// Command ucudnn-profile reads a ucudnn-profile-report/v1 document (as
// written by the -profile flag of ucudnn-time, ucudnn-bench and
// ucudnn-optimize, or served at /debug/ucudnn/profile) and either
// validates it or renders the human-readable attribution table.
//
// Usage:
//
//	ucudnn-profile prof.json             # pretty-print the attribution table
//	ucudnn-profile -check prof.json      # validate schema + invariants, exit 1 on failure
//	ucudnn-time -net alexnet -profile - | less   # table straight from a run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ucudnn/internal/core"
)

func main() {
	check := flag.Bool("check", false, "validate the report (schema, phase-name scheme, attribution invariants) instead of printing it")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ucudnn-profile [-check] <report.json|->")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *check); err != nil {
		fmt.Fprintln(os.Stderr, "ucudnn-profile:", err)
		os.Exit(1)
	}
}

func run(path string, check bool) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	if check {
		if err := core.ValidateProfile(data); err != nil {
			return err
		}
		var rep core.ProfileReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return err
		}
		fmt.Printf("%s: valid %s (%d kernels, %d handles, %d phases)\n",
			path, rep.Schema, len(rep.Kernels), len(rep.Handles), len(rep.TopPhases))
		return nil
	}
	var rep core.ProfileReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != core.ProfileSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, core.ProfileSchema)
	}
	return rep.WriteTable(os.Stdout)
}
