// Command ucudnn-benchdiff closes the repo's perf-telemetry loop: it
// turns `go test -bench` output into a schema'd JSON report (-emit) and
// compares two reports with per-benchmark thresholds, failing on a
// >15% ns/op regression (configurable) or any allocs/op increase.
//
//	go test -run=NONE -bench=. -benchmem ./internal/conv/ | ucudnn-benchdiff -emit > report.json
//	ucudnn-benchdiff BENCH_kernels.json report.json
//
// The baseline may be either a report emitted by -emit (schema
// ucudnn-bench-report/v1) or the committed BENCH_kernels.json shape,
// whose entries carry their numbers in an "engine" sub-object. An entry
// may set "max_regress" (e.g. 0.30) to loosen its ns/op threshold —
// noisy benchmarks get per-benchmark slack instead of a global one.
//
// Exit status: 0 clean, 1 regression detected, 2 usage or parse error.
// -informational prints violations but exits 0 (the CI mode until a
// quiet multicore runner exists; see the BENCH_kernels.json host note).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies reports emitted by -emit.
const Schema = "ucudnn-bench-report/v1"

// Metrics is one benchmark's measured numbers.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the -emit output shape.
type Report struct {
	Schema     string             `json:"schema"`
	Host       map[string]string  `json:"host,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// baselineEntry accepts both report shapes: flat metrics (report/v1)
// or the BENCH_kernels.json form with an "engine" sub-object. Either
// may set MaxRegress to override the global ns/op threshold.
type baselineEntry struct {
	Metrics
	Engine     *Metrics `json:"engine"`
	MaxRegress float64  `json:"max_regress,omitempty"`
}

func (e baselineEntry) metrics() Metrics {
	if e.Engine != nil {
		return *e.Engine
	}
	return e.Metrics
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ucudnn-benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	emit := fs.Bool("emit", false, "parse `go test -bench` output on stdin and emit a JSON report")
	threshold := fs.Float64("threshold", 0.15, "allowed fractional ns/op regression (0.15 = +15%)")
	informational := fs.Bool("informational", false, "report violations but exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *emit {
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "usage: ucudnn-benchdiff -emit < bench-output > report.json")
			return 2
		}
		return runEmit(stdin, stdout, stderr)
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: ucudnn-benchdiff [-threshold f] [-informational] baseline.json current.json")
		return 2
	}
	violations, err := compareFiles(fs.Arg(0), fs.Arg(1), *threshold)
	if err != nil {
		fmt.Fprintln(stderr, "ucudnn-benchdiff:", err)
		return 2
	}
	if len(violations) == 0 {
		fmt.Fprintln(stdout, "benchdiff: no regressions")
		return 0
	}
	for _, v := range violations {
		fmt.Fprintln(stdout, "benchdiff:", v)
	}
	if *informational {
		fmt.Fprintf(stdout, "benchdiff: %d violation(s), informational mode — not failing\n", len(violations))
		return 0
	}
	return 1
}

// runEmit parses `go test -bench -benchmem` output into a Report.
func runEmit(stdin io.Reader, stdout, stderr io.Writer) int {
	benches, err := parseBenchOutput(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "ucudnn-benchdiff:", err)
		return 2
	}
	r := Report{
		Schema: Schema,
		Host: map[string]string{
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			"cores":      strconv.Itoa(runtime.NumCPU()),
			"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		},
		Benchmarks: benches,
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fmt.Fprintln(stderr, "ucudnn-benchdiff:", err)
		return 2
	}
	return 0
}

// parseBenchOutput extracts benchmark result lines of the form
//
//	BenchmarkName-8  100  123456 ns/op  32 B/op  4 allocs/op
//
// keyed by the name with the "Benchmark" prefix and "-GOMAXPROCS"
// suffix stripped (matching the BENCH_kernels.json keys).
func parseBenchOutput(r io.Reader) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m Metrics
		seen := false
		for i := 2; i+1 < len(fields); i++ {
			v := fields[i]
			switch fields[i+1] {
			case "ns/op":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op %q for %s", v, name)
				}
				m.NsPerOp = f
				seen = true
			case "B/op":
				m.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
			case "allocs/op":
				m.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
			}
		}
		if seen {
			out[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found on stdin")
	}
	return out, nil
}

// loadBaseline reads either report shape into name -> (metrics, threshold
// override).
func loadBaseline(path string) (map[string]baselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw struct {
		Benchmarks map[string]baselineEntry `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(raw.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return raw.Benchmarks, nil
}

// compareFiles diffs current against baseline and returns the sorted
// violation messages.
func compareFiles(basePath, curPath string, threshold float64) ([]string, error) {
	base, err := loadBaseline(basePath)
	if err != nil {
		return nil, err
	}
	curEntries, err := loadBaseline(curPath)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		old := base[name].metrics()
		curEntry, ok := curEntries[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: missing from current report", name))
			continue
		}
		cur := curEntry.metrics()
		limit := threshold
		if base[name].MaxRegress > 0 {
			limit = base[name].MaxRegress
		}
		if old.NsPerOp > 0 {
			ratio := cur.NsPerOp / old.NsPerOp
			if ratio > 1+limit {
				violations = append(violations, fmt.Sprintf(
					"%s: ns/op regressed %.1f%% (%.0f -> %.0f, limit +%.0f%%)",
					name, (ratio-1)*100, old.NsPerOp, cur.NsPerOp, limit*100))
			}
		}
		if cur.AllocsPerOp > old.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op increased %d -> %d (any increase fails)",
				name, old.AllocsPerOp, cur.AllocsPerOp))
		}
	}
	return violations, nil
}
