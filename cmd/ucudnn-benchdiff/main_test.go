package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: ucudnn/internal/conv
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkConvKernels/GEMM-4         	     100	  10947224 ns/op	       0 B/op	       0 allocs/op
BenchmarkConvKernels/WINOGRAD-4     	      50	  20228556 ns/op	      16 B/op	       1 allocs/op
BenchmarkRec	 9000000	       131.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	ucudnn/internal/conv	2.034s
`

func TestParseBenchOutput(t *testing.T) {
	m, err := parseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(m), m)
	}
	g := m["ConvKernels/GEMM"]
	if g.NsPerOp != 10947224 || g.AllocsPerOp != 0 {
		t.Fatalf("GEMM = %+v", g)
	}
	w := m["ConvKernels/WINOGRAD"]
	if w.NsPerOp != 20228556 || w.BytesPerOp != 16 || w.AllocsPerOp != 1 {
		t.Fatalf("WINOGRAD = %+v", w)
	}
	// Unsuffixed names (no -N) parse too, with fractional ns/op.
	if r := m["Rec"]; r.NsPerOp != 131.5 {
		t.Fatalf("Rec = %+v", r)
	}
	if _, err := parseBenchOutput(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("empty input did not error")
	}
}

func TestEmitProducesSchemaReport(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-emit"}, strings.NewReader(benchOutput), &out, &errOut); code != 0 {
		t.Fatalf("emit exit %d: %s", code, errOut.String())
	}
	var r Report
	if err := json.Unmarshal([]byte(out.String()), &r); err != nil {
		t.Fatal(err)
	}
	if r.Schema != Schema || len(r.Benchmarks) != 3 || r.Host["go"] == "" {
		t.Fatalf("report = %+v", r)
	}
}

// writeReport writes a flat report/v1 file with the given entries.
func writeReport(t *testing.T, dir, name string, benches map[string]Metrics) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Report{Schema: Schema, Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRegressionDetection is the acceptance-criteria self-test: an
// injected >=15% ns/op regression and an allocs/op increase both fail
// with a non-zero exit, identical reports compare clean.
func TestRegressionDetection(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", map[string]Metrics{
		"A": {NsPerOp: 1000, AllocsPerOp: 0},
		"B": {NsPerOp: 2000, AllocsPerOp: 2},
	})

	t.Run("identical-clean", func(t *testing.T) {
		var out, errOut strings.Builder
		if code := run([]string{base, base}, nil, &out, &errOut); code != 0 {
			t.Fatalf("identical reports exit %d: %s%s", code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "no regressions") {
			t.Fatalf("clean output = %q", out.String())
		}
	})

	t.Run("ns-regression-fails", func(t *testing.T) {
		cur := writeReport(t, dir, "slow.json", map[string]Metrics{
			"A": {NsPerOp: 1160, AllocsPerOp: 0}, // +16% > 15%
			"B": {NsPerOp: 2000, AllocsPerOp: 2},
		})
		var out, errOut strings.Builder
		if code := run([]string{base, cur}, nil, &out, &errOut); code != 1 {
			t.Fatalf("regression exit %d, want 1: %s%s", code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "A: ns/op regressed") {
			t.Fatalf("violation output = %q", out.String())
		}
	})

	t.Run("within-threshold-passes", func(t *testing.T) {
		cur := writeReport(t, dir, "ok.json", map[string]Metrics{
			"A": {NsPerOp: 1140, AllocsPerOp: 0}, // +14% < 15%
			"B": {NsPerOp: 1900, AllocsPerOp: 2},
		})
		var out, errOut strings.Builder
		if code := run([]string{base, cur}, nil, &out, &errOut); code != 0 {
			t.Fatalf("within-threshold exit %d: %s%s", code, out.String(), errOut.String())
		}
	})

	t.Run("alloc-increase-fails", func(t *testing.T) {
		cur := writeReport(t, dir, "allocs.json", map[string]Metrics{
			"A": {NsPerOp: 1000, AllocsPerOp: 1}, // any increase fails
			"B": {NsPerOp: 2000, AllocsPerOp: 2},
		})
		var out, errOut strings.Builder
		if code := run([]string{base, cur}, nil, &out, &errOut); code != 1 {
			t.Fatalf("alloc increase exit %d, want 1: %s%s", code, out.String(), errOut.String())
		}
		if !strings.Contains(out.String(), "A: allocs/op increased 0 -> 1") {
			t.Fatalf("violation output = %q", out.String())
		}
	})

	t.Run("missing-benchmark-fails", func(t *testing.T) {
		cur := writeReport(t, dir, "missing.json", map[string]Metrics{
			"A": {NsPerOp: 1000},
		})
		var out, errOut strings.Builder
		if code := run([]string{base, cur}, nil, &out, &errOut); code != 1 {
			t.Fatalf("missing benchmark exit %d, want 1", code)
		}
		if !strings.Contains(out.String(), "B: missing") {
			t.Fatalf("violation output = %q", out.String())
		}
	})

	t.Run("informational-exits-zero", func(t *testing.T) {
		cur := writeReport(t, dir, "slow2.json", map[string]Metrics{
			"A": {NsPerOp: 5000, AllocsPerOp: 3},
			"B": {NsPerOp: 2000, AllocsPerOp: 2},
		})
		var out, errOut strings.Builder
		if code := run([]string{"-informational", base, cur}, nil, &out, &errOut); code != 0 {
			t.Fatalf("informational exit %d, want 0: %s", code, errOut.String())
		}
		if !strings.Contains(out.String(), "informational mode") {
			t.Fatalf("informational output = %q", out.String())
		}
	})
}

// TestNestedBaselineAndOverrides covers the BENCH_kernels.json shape:
// numbers in an "engine" sub-object and per-benchmark max_regress.
func TestNestedBaselineAndOverrides(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "nested.json")
	nested := `{
	  "description": "committed baseline",
	  "benchmarks": {
	    "ConvKernels/GEMM": {
	      "seed": {"ns_per_op": 15124941, "allocs_per_op": 0},
	      "engine": {"ns_per_op": 10000000, "allocs_per_op": 0},
	      "speedup": 1.38
	    },
	    "ConvKernels/NOISY": {
	      "engine": {"ns_per_op": 1000, "allocs_per_op": 0},
	      "max_regress": 0.5
	    }
	  }
	}`
	if err := os.WriteFile(base, []byte(nested), 0o644); err != nil {
		t.Fatal(err)
	}
	cur := writeReport(t, dir, "cur.json", map[string]Metrics{
		"ConvKernels/GEMM":  {NsPerOp: 11000000, AllocsPerOp: 0}, // +10% vs engine: fine
		"ConvKernels/NOISY": {NsPerOp: 1400, AllocsPerOp: 0},     // +40% < its 50% override
	})
	var out, errOut strings.Builder
	if code := run([]string{base, cur}, nil, &out, &errOut); code != 0 {
		t.Fatalf("nested compare exit %d: %s%s", code, out.String(), errOut.String())
	}
	// Against the seed numbers this would be a huge win; against engine a
	// +65% regression — prove the engine sub-object is what is compared.
	cur2 := writeReport(t, dir, "cur2.json", map[string]Metrics{
		"ConvKernels/GEMM":  {NsPerOp: 16500000, AllocsPerOp: 0},
		"ConvKernels/NOISY": {NsPerOp: 1600, AllocsPerOp: 0}, // +60% > 50% override
	})
	out.Reset()
	if code := run([]string{base, cur2}, nil, &out, &errOut); code != 1 {
		t.Fatalf("nested regression exit %d, want 1: %s", code, out.String())
	}
	for _, want := range []string{"ConvKernels/GEMM: ns/op regressed", "ConvKernels/NOISY: ns/op regressed"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"one.json"}, nil, &out, &errOut); code != 2 {
		t.Fatalf("one-arg exit %d, want 2", code)
	}
	if code := run([]string{"a.json", "b.json"}, nil, &out, &errOut); code != 2 {
		t.Fatalf("nonexistent files exit %d, want 2", code)
	}
	if code := run([]string{"-emit", "extra"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("emit with args exit %d, want 2", code)
	}
}

// TestCommittedBaselineLoads guards the make-check wiring: the repo's
// committed BENCH_kernels.json must stay loadable by this tool.
func TestCommittedBaselineLoads(t *testing.T) {
	b, err := loadBaseline(filepath.Join("..", "..", "BENCH_kernels.json"))
	if err != nil {
		t.Fatal(err)
	}
	g, ok := b["ConvKernels/GEMM"]
	if !ok || g.metrics().NsPerOp <= 0 {
		t.Fatalf("committed baseline GEMM entry = %+v", g)
	}
}
